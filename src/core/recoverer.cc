#include "core/recoverer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.h"
#include "util/log.h"
#include "util/strings.h"

namespace mercury::core {

using util::Duration;
using util::LogLevel;
using util::LogLine;

Recoverer::Recoverer(sim::Simulator& sim, bus::DedicatedLink& link,
                     RestartTree tree, Oracle& oracle,
                     ProcessControl& process_control, RecConfig config)
    : sim_(sim),
      link_(link),
      tree_(std::move(tree)),
      oracle_(oracle),
      process_control_(process_control),
      config_(std::move(config)) {
  assert(tree_.validate().ok());
}

Recoverer::~Recoverer() = default;

void Recoverer::start() {
  link_.bind(config_.rec_name,
             [this](const msg::Message& message) { on_link_message(message); });
}

void Recoverer::crash() {
  alive_ = false;
  obs::instant(sim_.now(), "proc", "rec.crash", "rec");
  LogLine(LogLevel::kInfo, sim_.now(), "rec") << "crashed (fail-silent)";
}

void Recoverer::restart_complete() {
  alive_ = true;
  // The generalized procedural knowledge survives in the restart tree file;
  // in-memory chain state (queue, escalation context, backoff streaks,
  // attempt budgets) is process state and is lost. Parked hard failures
  // survive: they are the operator-facing record.
  queue_.clear();
  last_.reset();
  backoff_.clear();
  chain_attempts_ = 0;
  obs::instant(sim_.now(), "proc", "rec.restarted", "rec");
  LogLine(LogLevel::kInfo, sim_.now(), "rec") << "restarted";
}

void Recoverer::on_link_message(const msg::Message& message) {
  if (message.kind == msg::Kind::kPing) {
    if (alive_) link_.send(msg::make_pong(message, config_.rec_name));
    return;
  }
  if (message.kind == msg::Kind::kPong) {
    if (alive_ && message.from == config_.fd_name &&
        message.seq == fd_outstanding_seq_) {
      fd_outstanding_seq_ = 0;
      if (fd_timeout_.valid()) {
        sim_.cancel(fd_timeout_);
        fd_timeout_ = sim::EventId{};
      }
    }
    return;
  }
  if (!alive_) return;
  if (message.kind == msg::Kind::kCommand && message.verb == "report-failure") {
    const std::string component = message.body.attr_or("component", "");
    if (!component.empty()) handle_report(component);
  }
}

bool Recoverer::is_parked(const std::string& component) const {
  return parked_.contains(component) ||
         std::find(hard_failures_.begin(), hard_failures_.end(), component) !=
             hard_failures_.end();
}

void Recoverer::handle_report(const std::string& component) {
  obs::instant(sim_.now(), "recover", "rec.report-received", "rec",
               {{"component", component}});
  // A hard failure is parked for the operator; restarting it forever is
  // exactly what the paper's policy must prevent.
  if (is_parked(component)) return;

  if (current_.has_value()) {
    const auto& in_flight = current_->components;
    if (std::find(in_flight.begin(), in_flight.end(), component) !=
        in_flight.end()) {
      return;  // already being restarted
    }
    if (std::find(queue_.begin(), queue_.end(), component) == queue_.end()) {
      queue_.push_back(component);
    }
    return;
  }

  CurrentRestart restart;
  restart.reported_component = component;
  restart.report_time = sim_.now();

  // Escalation (§3.3): the failure survived a restart that covered this
  // component and has resurfaced promptly.
  const bool escalating =
      last_.has_value() &&
      std::find(last_->components.begin(), last_->components.end(), component) !=
          last_->components.end() &&
      (sim_.now() - last_->complete_time) < config_.escalation_window;

  if (escalating && last_->soft) {
    // The soft procedure (§7's cheapest rung) did not cure it: climb to the
    // restart ladder. The oracle has not guessed yet, so this is a fresh
    // choose, not a tree escalation.
    restart.escalation_level = 1;
    ++escalations_;
    obs::instant(sim_.now(), "recover", "rec.escalate", "rec",
                 {{"component", component}, {"level", "1"}, {"from", "soft"}});
    obs::incr("rec.escalations");
    OracleQuery query;
    query.tree = &tree_;
    query.failed_component = component;
    query.trace_now = sim_.now().to_seconds();
    restart.node = oracle_.choose(query);
    execute(std::move(restart));
    return;
  }

  if (escalating) {
    restart.escalation_level = last_->escalation_level + 1;
    ++escalations_;
    obs::instant(sim_.now(), "recover", "rec.escalate", "rec",
                 {{"component", component},
                  {"level", std::to_string(restart.escalation_level)}});
    obs::incr("rec.escalations");
    if (!last_->feedback_sent) {
      obs::instant(sim_.now(), "oracle", "oracle.feedback", "rec",
                   {{"component", last_->chain_component},
                    {"cell", tree_.cell(last_->node).label},
                    {"cured", "0"}});
      oracle_.feedback(last_->chain_component, last_->node, /*cured=*/false);
      last_->feedback_sent = true;
    }
    if (last_->node == tree_.root() &&
        note_root_restart_then_maybe_park(component)) {
      return;
    }
    OracleQuery query;
    query.tree = &tree_;
    query.failed_component = component;
    query.escalation_level = restart.escalation_level;
    query.previous_node = last_->node;
    query.trace_now = sim_.now().to_seconds();
    restart.node = oracle_.choose(query);
  } else {
    // Fresh failure: a new chain begins; the attempt budget starts over.
    chain_attempts_ = 0;
    // With recursive recovery enabled, the first rung is the component's own
    // soft procedure; the restart tree is the ladder above.
    if (config_.enable_soft_recovery &&
        process_control_.supports_soft_recovery()) {
      execute_soft(std::move(restart));
      return;
    }
    OracleQuery query;
    query.tree = &tree_;
    query.failed_component = component;
    query.trace_now = sim_.now().to_seconds();
    restart.node = oracle_.choose(query);
  }

  execute(std::move(restart));
}

bool Recoverer::note_root_restart_then_maybe_park(const std::string& component) {
  // The whole system was already restarted and this component promptly
  // failed again. Count uncured root restarts *per component*: a fresh,
  // unrelated crash landing just after a reboot must not get an innocent
  // component parked (it merely rides the escalation).
  RootRestartHistory& history = root_history_[component];
  if (sim_.now() - history.last < config_.root_retry_window) {
    ++history.count;
  } else {
    history.count = 1;
  }
  history.last = sim_.now();
  if (history.count < config_.max_root_restarts) return false;
  LogLine(LogLevel::kError, sim_.now(), "rec")
      << "hard failure: " << component << " persists after " << history.count
      << " full restarts; giving up";
  obs::instant(sim_.now(), "recover", "rec.hard-failure", "rec",
               {{"component", component},
                {"root_restarts", std::to_string(history.count)}});
  obs::incr("rec.hard_failures");
  park(component, "root-restarts-exhausted");
  return true;
}

void Recoverer::park(const std::string& component, const std::string& reason) {
  hard_failures_.push_back(component);
  std::vector<std::string> to_mask = {component};
  // Stragglers: anything still restarting belongs to this chain's abandoned
  // actions (REC serializes restarts) and is in unknown startup state —
  // parked along with the reported component. Healthy components abandoned
  // actions left masked go back into service.
  for (const auto& name : process_control_.restarting_now()) {
    if (name != component) to_mask.push_back(name);
  }
  for (const auto& name : to_mask) parked_.insert(name);
  std::vector<std::string> to_unmask;
  for (const auto& name : masked_) {
    if (!parked_.contains(name)) to_unmask.push_back(name);
  }
  obs::instant(sim_.now(), "recover", "rec.parked", "rec",
               {{"component", component},
                {"reason", reason},
                {"masked", util::join(to_mask, ",")}});
  obs::incr("rec.parked");
  LogLine(LogLevel::kError, sim_.now(), "rec")
      << "parked " << util::join(to_mask, ",") << " (" << reason
      << "); operating degraded until operator intervention";
  // Permanent FD mask: the station keeps running without the parked cell
  // instead of detect/restart-looping it. send_mask never unmasks parked
  // components again.
  send_mask(to_mask, true);
  if (!to_unmask.empty()) send_mask(to_unmask, false);
  drain_queue();
}

bool Recoverer::budget_exhausted_then_park(const CurrentRestart& restart) {
  if (restart.planned || config_.max_attempts_per_chain <= 0) return false;
  if (chain_attempts_ < config_.max_attempts_per_chain) return false;
  LogLine(LogLevel::kError, sim_.now(), "rec")
      << "hard failure: chain for " << restart.reported_component
      << " exhausted its budget of " << config_.max_attempts_per_chain
      << " restart attempts; giving up";
  obs::instant(sim_.now(), "recover", "rec.hard-failure", "rec",
               {{"component", restart.reported_component},
                {"attempts", std::to_string(chain_attempts_)}});
  obs::incr("rec.hard_failures");
  park(restart.reported_component, "attempt-budget-exhausted");
  return true;
}

void Recoverer::execute_soft(CurrentRestart restart) {
  restart.soft = true;
  restart.components = {restart.reported_component};
  const auto cell = tree_.lowest_cell_covering(restart.reported_component);
  restart.node = cell ? *cell : tree_.root();
  restart.action_id = next_action_id_++;
  ++soft_recoveries_;
  restart.trace_span = obs::begin_span(
      sim_.now(), "recover", "rec.soft", "rec",
      {{"component", restart.reported_component},
       {"cell", tree_.cell(restart.node).label}});
  obs::incr("rec.soft_recoveries");
  LogLine(LogLevel::kInfo, sim_.now(), "rec")
      << "soft recovery of " << restart.reported_component
      << " (recursive-recovery rung 0)";
  send_mask(restart.components, true);
  const std::string component = restart.reported_component;
  const std::uint64_t action_id = restart.action_id;
  current_ = restart;
  process_control_.soft_recover(
      component, [this, action_id] { on_restart_complete(action_id); });
}

bool Recoverer::planned_restart(const std::string& component) {
  if (!alive_) return false;
  if (current_.has_value()) return false;  // reactive work has priority
  if (is_parked(component)) return false;
  const auto cell = tree_.lowest_cell_covering(component);
  if (!cell) return false;
  CurrentRestart restart;
  restart.reported_component = component;
  restart.node = *cell;
  restart.planned = true;
  restart.report_time = sim_.now();
  ++planned_restarts_;
  execute(std::move(restart));
  return true;
}

void Recoverer::execute(CurrentRestart restart) {
  restart.components = tree_.group_components(restart.node);
  assert(!restart.components.empty());
  restart.action_id = next_action_id_++;

  // Attempt budget: a chain that keeps consuming restarts — whether the
  // failure persists or the restarts themselves keep timing out — is parked
  // rather than retried forever.
  if (budget_exhausted_then_park(restart)) return;
  if (!restart.planned) ++chain_attempts_;

  // Backoff (crash-loop pacing): successive attempts on the same cell are
  // spaced out exponentially. Serialization starts immediately (current_ is
  // set, so new reports queue), but the kill/start itself waits.
  Duration delay = Duration::zero();
  if (config_.backoff_base > Duration::zero()) {
    CellBackoff& backoff = backoff_[restart.node];
    if (sim_.now() - backoff.last > config_.backoff_decay) backoff.streak = 0;
    if (backoff.streak > 0) {
      const double wait_s =
          std::min(config_.backoff_cap.to_seconds(),
                   config_.backoff_base.to_seconds() *
                       std::pow(config_.backoff_factor, backoff.streak - 1));
      const util::TimePoint allowed = backoff.last + Duration::seconds(wait_s);
      if (allowed > sim_.now()) delay = allowed - sim_.now();
    }
  }

  if (delay > Duration::zero()) {
    ++backoffs_applied_;
    obs::instant(sim_.now(), "recover", "rec.backoff", "rec",
                 {{"component", restart.reported_component},
                  {"cell", tree_.cell(restart.node).label},
                  {"delay_s", util::format_fixed(delay.to_seconds(), 3)}});
    obs::incr("rec.backoffs");
    LogLine(LogLevel::kInfo, sim_.now(), "rec")
        << "backing off " << util::format_fixed(delay.to_seconds(), 3)
        << " s before restarting cell " << tree_.cell(restart.node).label;
    const std::uint64_t action_id = restart.action_id;
    current_ = restart;
    sim_.schedule_after(delay, "rec.backoff", [this, action_id] {
      if (!current_.has_value() || current_->action_id != action_id) return;
      dispatch(*current_);
    });
    return;
  }

  current_ = restart;
  dispatch(restart);
}

void Recoverer::dispatch(CurrentRestart restart) {
  assert(current_.has_value() && current_->action_id == restart.action_id);
  LogLine(LogLevel::kInfo, sim_.now(), "rec")
      << "restarting cell " << tree_.cell(restart.node).label << " ("
      << util::join(restart.components, ",") << ") for failure of "
      << restart.reported_component
      << (restart.escalation_level > 0
              ? " [escalation level " + std::to_string(restart.escalation_level) + "]"
              : "");

  current_->trace_span = obs::begin_span(
      sim_.now(), "recover", "rec.restart", "rec",
      {{"component", restart.reported_component},
       {"cell", tree_.cell(restart.node).label},
       {"group", util::join(restart.components, ",")},
       {"escalation", std::to_string(restart.escalation_level)},
       {"planned", restart.planned ? "1" : "0"}});
  send_mask(restart.components, true);

  if (config_.backoff_base > Duration::zero()) {
    CellBackoff& backoff = backoff_[restart.node];
    ++backoff.streak;
    backoff.last = sim_.now();
  }

  const std::uint64_t action_id = restart.action_id;
  // Deadline before dispatch: ProcessControl may complete synchronously.
  if (config_.restart_deadline > Duration::zero()) {
    current_->deadline_event =
        sim_.schedule_after(config_.restart_deadline, "rec.restart-deadline",
                            [this, action_id] { on_restart_timeout(action_id); });
  }
  process_control_.restart_group(
      restart.components, [this, action_id] { on_restart_complete(action_id); });
}

void Recoverer::on_restart_timeout(std::uint64_t action_id) {
  if (!current_.has_value() || current_->action_id != action_id) return;
  const CurrentRestart failed = *current_;
  current_.reset();

  ++restart_timeouts_;
  obs::end_span(sim_.now(), failed.trace_span, {{"outcome", "timeout"}});
  obs::instant(sim_.now(), "restart", "restart.timeout", "rec",
               {{"component", failed.reported_component},
                {"cell", tree_.cell(failed.node).label},
                {"escalation", std::to_string(failed.escalation_level)}});
  obs::incr("rec.restart_timeouts");
  LogLine(LogLevel::kWarn, sim_.now(), "rec")
      << "restart of cell " << tree_.cell(failed.node).label << " for "
      << failed.reported_component << " exceeded its deadline; escalating";

  if (failed.planned) {
    // A timed-out rejuvenation turns reactive: the cell is now genuinely
    // broken. Treat it as a fresh chain on the reported component.
    chain_attempts_ = 0;
  }

  // Whatever checkpointed state the failed attempt may have warm-started
  // from is now fault-suspected (ISSUE 3 — bad state is exactly what a
  // restart is meant to shed). The shed is tier-aware (ISSUE 7): the
  // implementation condemns only the local snapshots that could have fed
  // the failed attempt; partner replicas and stable copies survive, so the
  // superseding attempt may still warm-start from an unsuspected tier.
  process_control_.discard_checkpoints(failed.components);

  // The hung group's members stay masked; the superseding restart below
  // covers a superset and re-kills the stragglers. No oracle feedback: a
  // restart that never finished says nothing about cure sets.
  CurrentRestart retry;
  retry.reported_component = failed.reported_component;
  retry.report_time = failed.report_time;
  retry.escalation_level = failed.escalation_level + 1;
  ++escalations_;
  obs::instant(sim_.now(), "recover", "rec.escalate", "rec",
               {{"component", failed.reported_component},
                {"level", std::to_string(retry.escalation_level)},
                {"from", "timeout"}});
  obs::incr("rec.escalations");

  if (failed.node == tree_.root()) {
    // Even the full-system restart hangs: after the tolerated number of
    // root-level rounds this chain is unrecoverable by restart. park()
    // sweeps up the hung stragglers and frees the healthy members.
    if (note_root_restart_then_maybe_park(failed.reported_component)) return;
  }

  OracleQuery query;
  query.tree = &tree_;
  query.failed_component = failed.reported_component;
  query.escalation_level = retry.escalation_level;
  query.previous_node = failed.node;
  query.trace_now = sim_.now().to_seconds();
  retry.node = oracle_.choose(query);
  execute(std::move(retry));
}

void Recoverer::on_restart_complete(std::uint64_t action_id) {
  // Stale completions are real under restart-time faults: a hung restart
  // that finishes after its deadline fired, or a superseded group draining.
  if (!current_.has_value() || current_->action_id != action_id) return;
  const CurrentRestart finished = *current_;
  if (finished.deadline_event.valid()) sim_.cancel(finished.deadline_event);
  current_.reset();

  obs::end_span(sim_.now(), finished.trace_span);
  obs::incr(finished.soft ? "rec.soft_completed" : "rec.restarts");
  obs::incr("restarts.cell." + tree_.cell(finished.node).label);
  obs::observe("recovery.action_seconds",
               (sim_.now() - finished.report_time).to_seconds());

  send_mask(finished.components, false);

  RecoveryRecord record;
  record.reported_component = finished.reported_component;
  record.node = finished.node;
  record.restarted = finished.components;
  record.escalation_level = finished.escalation_level;
  record.planned = finished.planned;
  record.soft = finished.soft;
  record.report_time = finished.report_time;
  record.complete_time = sim_.now();
  history_.push_back(record);

  LastRestart last;
  last.node = finished.node;
  last.components = finished.components;
  last.escalation_level = finished.escalation_level;
  last.soft = finished.soft;
  last.complete_time = sim_.now();
  last.chain_component = finished.escalation_level > 0 && last_.has_value()
                             ? last_->chain_component
                             : finished.reported_component;
  // Soft actions carry no oracle recommendation; never feed the oracle
  // about a node it did not choose.
  last.feedback_sent = finished.soft;
  last_ = last;

  // Positive feedback once the escalation window passes without recurrence.
  const util::TimePoint completed_at = sim_.now();
  sim_.schedule_after(config_.escalation_window, "rec.feedback",
                      [this, completed_at] {
                        if (last_.has_value() &&
                            last_->complete_time == completed_at &&
                            !last_->feedback_sent) {
                          obs::instant(sim_.now(), "oracle", "oracle.feedback",
                                       "rec",
                                       {{"component", last_->chain_component},
                                        {"cell", tree_.cell(last_->node).label},
                                        {"cured", "1"}});
                          oracle_.feedback(last_->chain_component, last_->node,
                                           /*cured=*/true);
                          last_->feedback_sent = true;
                        }
                      });

  drain_queue();
}

void Recoverer::drain_queue() {
  while (!queue_.empty() && !current_.has_value()) {
    const std::string component = queue_.front();
    queue_.pop_front();
    if (is_parked(component)) continue;
    // Reports about components the finishing restart covered are stale: the
    // restart either cured them, or FD will re-detect and escalate.
    if (last_.has_value() &&
        std::find(last_->components.begin(), last_->components.end(), component) !=
            last_->components.end()) {
      continue;
    }
    handle_report(component);
  }
}

void Recoverer::send_mask(const std::vector<std::string>& components, bool mask) {
  std::vector<std::string> effective = components;
  if (!mask && !parked_.empty()) {
    // Parked components never come back off the mask: the station operates
    // degraded without them until an operator intervenes.
    effective.erase(std::remove_if(effective.begin(), effective.end(),
                                   [this](const std::string& name) {
                                     return parked_.contains(name);
                                   }),
                    effective.end());
    if (effective.empty()) return;
  }
  for (const auto& name : effective) {
    if (mask) {
      masked_.insert(name);
    } else {
      masked_.erase(name);
    }
  }
  obs::instant(sim_.now(), "recover", mask ? "rec.mask" : "rec.unmask", "rec",
               {{"components", util::join(effective, ",")}});
  msg::Message command = msg::make_command(config_.rec_name, config_.fd_name,
                                           seq_++, mask ? "mask" : "unmask");
  command.body.set_attr("components", util::join(effective, ","));
  link_.send(command);
}

void Recoverer::set_fd_restarter(std::function<void()> restarter) {
  fd_restarter_ = std::move(restarter);
}

void Recoverer::monitor_fd() {
  fd_loop_ = std::make_unique<sim::PeriodicTask>(
      sim_, "rec.ping-fd", config_.fd_ping_period, [this] { ping_fd(); });
  fd_loop_->start();
}

void Recoverer::ping_fd() {
  if (!alive_) return;
  if (fd_restart_in_flight_) return;
  if (fd_outstanding_seq_ != 0) return;
  const std::uint64_t seq = seq_++;
  fd_outstanding_seq_ = seq;
  link_.send(msg::make_ping(config_.rec_name, config_.fd_name, seq));
  fd_timeout_ = sim_.schedule_after(config_.fd_ping_timeout, "rec.fd-timeout",
                                    [this, seq] {
                                      if (fd_outstanding_seq_ == seq) {
                                        fd_outstanding_seq_ = 0;
                                        on_fd_timeout();
                                      }
                                    });
}

void Recoverer::on_fd_timeout() {
  if (!alive_ || !fd_restarter_) return;
  obs::instant(sim_.now(), "detect", "rec.fd-unresponsive", "rec");
  obs::incr("rec.fd_restarts");
  LogLine(LogLevel::kWarn, sim_.now(), "rec")
      << "fd unresponsive; initiating fd recovery";
  fd_restart_in_flight_ = true;
  fd_restarter_();
  sim_.schedule_after(config_.fd_ping_period * 5.0, "rec.fd-grace",
                      [this] { fd_restart_in_flight_ = false; });
}

}  // namespace mercury::core
