#include "core/recoverer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/trace.h"
#include "util/log.h"
#include "util/strings.h"

namespace mercury::core {

using util::Duration;
using util::LogLevel;
using util::LogLine;

const char* to_string(DispatchMode mode) {
  switch (mode) {
    case DispatchMode::kSerial: return "serial";
    case DispatchMode::kDag: return "dag";
    case DispatchMode::kOnDemand: return "on-demand";
  }
  return "?";
}

Recoverer::Recoverer(sim::Simulator& sim, bus::DedicatedLink& link,
                     RestartTree tree, Oracle& oracle,
                     ProcessControl& process_control, RecConfig config)
    : sim_(sim),
      link_(link),
      tree_(std::move(tree)),
      oracle_(oracle),
      process_control_(process_control),
      config_(std::move(config)) {
  assert(tree_.validate().ok());
}

Recoverer::~Recoverer() = default;

void Recoverer::start() {
  link_.bind(config_.rec_name,
             [this](const msg::Message& message) { on_link_message(message); });
}

void Recoverer::crash() {
  alive_ = false;
  obs::instant(sim_.now(), "proc", "rec.crash", "rec");
  LogLine(LogLevel::kInfo, sim_.now(), "rec") << "crashed (fail-silent)";
}

void Recoverer::restart_complete() {
  alive_ = true;
  // The generalized procedural knowledge survives in the restart tree file;
  // in-memory chain state (queue, escalation context, backoff streaks,
  // failure epochs) is process state and is lost. Parked hard failures
  // survive: they are the operator-facing record.
  queue_.clear();
  recent_.clear();
  backoff_.clear();
  completion_epoch_.clear();
  obs::instant(sim_.now(), "proc", "rec.restarted", "rec");
  LogLine(LogLevel::kInfo, sim_.now(), "rec") << "restarted";
}

void Recoverer::on_link_message(const msg::Message& message) {
  if (message.kind == msg::Kind::kPing) {
    if (alive_) link_.send(msg::make_pong(message, config_.rec_name));
    return;
  }
  if (message.kind == msg::Kind::kPong) {
    if (alive_ && message.from == config_.fd_name &&
        message.seq == fd_outstanding_seq_) {
      fd_outstanding_seq_ = 0;
      if (fd_timeout_.valid()) {
        sim_.cancel(fd_timeout_);
        fd_timeout_ = sim::EventId{};
      }
    }
    return;
  }
  if (!alive_) return;
  if (message.kind == msg::Kind::kCommand && message.verb == "report-failure") {
    const std::string component = message.body.attr_or("component", "");
    if (!component.empty()) handle_report(component);
  }
}

bool Recoverer::is_parked(const std::string& component) const {
  return parked_.contains(component) ||
         std::find(hard_failures_.begin(), hard_failures_.end(), component) !=
             hard_failures_.end();
}

bool Recoverer::component_in_flight(const std::string& component) const {
  for (const auto& [id, action] : actions_) {
    if (std::binary_search(action.components.begin(), action.components.end(),
                           component)) {
      return true;
    }
  }
  return false;
}

bool Recoverer::conflicts_with_in_flight(NodeId cell) const {
  for (const auto& [id, action] : actions_) {
    if (tree_.conflicts(cell, action.node)) return true;
  }
  return false;
}

void Recoverer::note_in_flight_peak() {
  max_concurrent_ = std::max(max_concurrent_, actions_.size());
}

bool Recoverer::traffic_active() const {
  return config_.traffic_driven && config_.dispatch == DispatchMode::kOnDemand;
}

TouchResult Recoverer::touch(const std::string& component) {
  if (!alive_ || !traffic_active()) return TouchResult::kIdle;
  if (is_parked(component)) return TouchResult::kParked;
  if (component_in_flight(component)) return TouchResult::kRestarting;
  const auto it =
      std::find_if(queue_.begin(), queue_.end(), [&](const QueuedReport& entry) {
        return entry.component == component;
      });
  if (it == queue_.end()) return TouchResult::kIdle;
  QueuedReport entry = *it;
  queue_.erase(it);
  if (should_drop(entry)) return TouchResult::kIdle;
  entry.touched = true;
  ++touch_promotions_;
  obs::instant(sim_.now(), "recover", "rec.touch", "rec",
               {{"component", component}});
  obs::incr("rec.touch_promotions");
  LogLine(LogLevel::kInfo, sim_.now(), "rec")
      << "client request touched " << component << "; promoting its restart";
  if (blocked_in_queue(entry)) {
    // An in-flight ancestor/descendant still conflicts: promoted to the DAG
    // front, dispatches at the first drain once the conflict clears.
    queue_.push_front(entry);
    return TouchResult::kPromoted;
  }
  dispatch_report(entry.component);
  return TouchResult::kPromoted;
}

void Recoverer::schedule_lazy_drain() {
  if (lazy_drain_event_.valid()) return;
  lazy_drain_event_ = sim_.schedule_after(
      config_.lazy_drain_interval, "rec.lazy-drain", [this] {
        lazy_drain_event_ = sim::EventId{};
        lazy_drain_tick();
      });
}

void Recoverer::lazy_drain_tick() {
  if (!alive_ || !traffic_active()) return;
  // Background drain of untouched cells: dispatch the oldest unblocked
  // entry, one per interval, so lazy restarts trickle along behind the
  // traffic-promoted ones without re-contending the whole tree at once.
  std::deque<QueuedReport> pending = std::move(queue_);
  queue_.clear();
  bool dispatched = false;
  while (!pending.empty()) {
    QueuedReport entry = pending.front();
    pending.pop_front();
    if (should_drop(entry)) continue;
    if (dispatched || blocked_in_queue(entry)) {
      queue_.push_back(entry);
      continue;
    }
    ++lazy_drains_;
    obs::incr("rec.lazy_drains");
    dispatch_report(entry.component);
    dispatched = true;
  }
  if (!queue_.empty()) schedule_lazy_drain();
}

void Recoverer::handle_report(const std::string& component) {
  obs::instant(sim_.now(), "recover", "rec.report-received", "rec",
               {{"component", component}});
  // A hard failure is parked for the operator; restarting it forever is
  // exactly what the paper's policy must prevent.
  if (is_parked(component)) return;

  // Already covered by an in-flight action (dispatched or backoff-pending):
  // that restart kills and revives it anyway; if the failure persists, FD
  // re-detects it after completion and the escalation logic takes over.
  if (component_in_flight(component)) return;

  if (!actions_.empty()) {
    bool conflict = config_.dispatch == DispatchMode::kSerial;
    if (!conflict && traffic_active()) {
      // Traffic-driven on-demand: while any action is in flight — the
      // minimal phase restoring the serving core — every further report
      // queues lazily, disjoint cell or not. Service reopens first; the
      // queued cell restarts when a client request touches it, or when the
      // background lazy drain reaches it.
      conflict = true;
    }
    if (!conflict) {
      // DAG modes: only a report whose cell overlaps an in-flight action's
      // cell must wait. Membership was ruled out above, so the only possible
      // overlap is this cell strictly containing an in-flight cell — and
      // restarting an ancestor while its descendant restarts is the one
      // unsafe overlap. Disjoint (sibling-subtree) cells dispatch now.
      const auto cell = tree_.lowest_cell_covering(component);
      conflict = !cell || conflicts_with_in_flight(*cell);
    }
    if (conflict) {
      enqueue_report(component);
      if (traffic_active()) schedule_lazy_drain();
      return;
    }
  }

  dispatch_report(component);
}

void Recoverer::dispatch_report(const std::string& component) {
  Action restart;
  restart.reported_component = component;
  restart.report_time = sim_.now();

  // Escalation (§3.3): the failure survived a restart that covered this
  // component and has resurfaced promptly.
  CompletionRecord* recent = covering_recent(component);

  if (recent != nullptr && recent->soft) {
    // The soft procedure (§7's cheapest rung) did not cure it: climb to the
    // restart ladder. The oracle has not guessed yet, so this is a fresh
    // choose, not a tree escalation.
    restart.escalation_level = 1;
    restart.chain_component = recent->chain_component;
    restart.chain_attempts = recent->chain_attempts;
    ++escalations_;
    obs::instant(sim_.now(), "recover", "rec.escalate", "rec",
                 {{"component", component}, {"level", "1"}, {"from", "soft"}});
    obs::incr("rec.escalations");
    OracleQuery query;
    query.tree = &tree_;
    query.failed_component = component;
    query.trace_now = sim_.now().to_seconds();
    restart.node = oracle_.choose(query);
    execute(std::move(restart));
    return;
  }

  if (recent != nullptr) {
    restart.escalation_level = recent->escalation_level + 1;
    restart.chain_component = recent->chain_component;
    restart.chain_attempts = recent->chain_attempts;
    ++escalations_;
    obs::instant(sim_.now(), "recover", "rec.escalate", "rec",
                 {{"component", component},
                  {"level", std::to_string(restart.escalation_level)}});
    obs::incr("rec.escalations");
    if (!recent->feedback_sent) {
      obs::instant(sim_.now(), "oracle", "oracle.feedback", "rec",
                   {{"component", recent->chain_component},
                    {"cell", tree_.cell(recent->node).label},
                    {"cured", "0"}});
      oracle_.feedback(recent->chain_component, recent->node, /*cured=*/false);
      recent->feedback_sent = true;
    }
    if (recent->node == tree_.root() &&
        note_root_restart_then_maybe_park(component, nullptr)) {
      return;
    }
    OracleQuery query;
    query.tree = &tree_;
    query.failed_component = component;
    query.escalation_level = restart.escalation_level;
    query.previous_node = recent->node;
    query.trace_now = sim_.now().to_seconds();
    restart.node = oracle_.choose(query);
  } else {
    // Fresh failure: a new chain begins; the attempt budget starts over.
    restart.chain_component = component;
    restart.chain_attempts = 0;
    // With recursive recovery enabled, the first rung is the component's own
    // soft procedure; the restart tree is the ladder above.
    if (config_.enable_soft_recovery &&
        process_control_.supports_soft_recovery()) {
      execute_soft(std::move(restart));
      return;
    }
    OracleQuery query;
    query.tree = &tree_;
    query.failed_component = component;
    query.trace_now = sim_.now().to_seconds();
    restart.node = oracle_.choose(query);
  }

  execute(std::move(restart));
}

Recoverer::CompletionRecord* Recoverer::covering_recent(
    const std::string& component) {
  CompletionRecord* best = nullptr;
  for (auto& record : recent_) {
    if ((sim_.now() - record.complete_time) >= config_.escalation_window) continue;
    if (!std::binary_search(record.components.begin(), record.components.end(),
                            component)) {
      continue;
    }
    if (best == nullptr || record.complete_time > best->complete_time) {
      best = &record;
    }
  }
  return best;
}

void Recoverer::prune_recent() {
  // A record past the escalation window can no longer match a "failure still
  // manifests" probe, and once feedback is settled nothing else reads it.
  std::erase_if(recent_, [this](const CompletionRecord& record) {
    return record.feedback_sent &&
           (sim_.now() - record.complete_time) >= config_.escalation_window;
  });
}

bool Recoverer::note_root_restart_then_maybe_park(
    const std::string& component, const std::set<std::string>* chain_touched) {
  // The whole system was already restarted and this component promptly
  // failed again. Count uncured root restarts *per component*: a fresh,
  // unrelated crash landing just after a reboot must not get an innocent
  // component parked (it merely rides the escalation).
  RootRestartHistory& history = root_history_[component];
  if (sim_.now() - history.last < config_.root_retry_window) {
    ++history.count;
  } else {
    history.count = 1;
  }
  history.last = sim_.now();
  if (history.count < config_.max_root_restarts) return false;
  LogLine(LogLevel::kError, sim_.now(), "rec")
      << "hard failure: " << component << " persists after " << history.count
      << " full restarts; giving up";
  obs::instant(sim_.now(), "recover", "rec.hard-failure", "rec",
               {{"component", component},
                {"root_restarts", std::to_string(history.count)}});
  obs::incr("rec.hard_failures");
  park(component, "root-restarts-exhausted", chain_touched);
  return true;
}

void Recoverer::park(const std::string& component, const std::string& reason,
                     const std::set<std::string>* chain_touched) {
  hard_failures_.push_back(component);
  std::vector<std::string> to_mask = {component};
  // Stragglers: processes still restarting from this chain's abandoned
  // attempts are in unknown startup state — parked along with the reported
  // component. Under DAG dispatch other chains' restarts may be live too, so
  // only members this chain actually touched are swept; healthy components
  // abandoned actions left masked go back into service.
  for (const auto& name : process_control_.restarting_now()) {
    if (name == component) continue;
    if (chain_touched == nullptr || !chain_touched->contains(name)) continue;
    to_mask.push_back(name);
  }
  for (const auto& name : to_mask) parked_.insert(name);
  std::set<std::string> live;
  for (const auto& [id, action] : actions_) {
    live.insert(action.components.begin(), action.components.end());
  }
  std::vector<std::string> to_unmask;
  for (const auto& name : masked_) {
    if (!parked_.contains(name) && !live.contains(name)) to_unmask.push_back(name);
  }
  obs::instant(sim_.now(), "recover", "rec.parked", "rec",
               {{"component", component},
                {"reason", reason},
                {"masked", util::join(to_mask, ",")}});
  obs::incr("rec.parked");
  LogLine(LogLevel::kError, sim_.now(), "rec")
      << "parked " << util::join(to_mask, ",") << " (" << reason
      << "); operating degraded until operator intervention";
  // Permanent FD mask: the station keeps running without the parked cell
  // instead of detect/restart-looping it. send_mask never unmasks parked
  // components again.
  send_mask(to_mask, true);
  if (!to_unmask.empty()) send_mask(to_unmask, false);
  // Parked hosts never come back: checkpoint replicas they host must be
  // reassigned (a parked partner is as gone as a killed one).
  process_control_.note_parked(to_mask);
  drain_queue();
}

bool Recoverer::budget_exhausted_then_park(const Action& restart) {
  if (restart.planned || config_.max_attempts_per_chain <= 0) return false;
  if (restart.chain_attempts < config_.max_attempts_per_chain) return false;
  LogLine(LogLevel::kError, sim_.now(), "rec")
      << "hard failure: chain for " << restart.reported_component
      << " exhausted its budget of " << config_.max_attempts_per_chain
      << " restart attempts; giving up";
  obs::instant(sim_.now(), "recover", "rec.hard-failure", "rec",
               {{"component", restart.reported_component},
                {"attempts", std::to_string(restart.chain_attempts)}});
  obs::incr("rec.hard_failures");
  park(restart.reported_component, "attempt-budget-exhausted",
       &restart.chain_touched);
  return true;
}

void Recoverer::execute_soft(Action restart) {
  restart.soft = true;
  restart.components = {restart.reported_component};
  const auto cell = tree_.lowest_cell_covering(restart.reported_component);
  restart.node = cell ? *cell : tree_.root();
  restart.action_id = next_action_id_++;
  ++soft_recoveries_;
  restart.trace_span = obs::begin_span(
      sim_.now(), "recover", "rec.soft", "rec",
      {{"component", restart.reported_component},
       {"cell", tree_.cell(restart.node).label}});
  obs::incr("rec.soft_recoveries");
  LogLine(LogLevel::kInfo, sim_.now(), "rec")
      << "soft recovery of " << restart.reported_component
      << " (recursive-recovery rung 0)";
  send_mask(restart.components, true);
  restart.dispatched = true;
  const std::string component = restart.reported_component;
  const std::uint64_t action_id = restart.action_id;
  actions_.emplace(action_id, std::move(restart));
  note_in_flight_peak();
  process_control_.soft_recover(
      component, [this, action_id] { on_restart_complete(action_id); });
}

bool Recoverer::planned_restart(const std::string& component) {
  if (!alive_) return false;
  if (is_parked(component)) return false;
  const auto cell = tree_.lowest_cell_covering(component);
  if (!cell) return false;
  // Reactive work has priority: declined while any action that could
  // interfere is in flight.
  if (config_.dispatch == DispatchMode::kSerial) {
    if (!actions_.empty()) return false;
  } else if (component_in_flight(component) || conflicts_with_in_flight(*cell)) {
    return false;
  }
  Action restart;
  restart.reported_component = component;
  restart.node = *cell;
  restart.planned = true;
  restart.report_time = sim_.now();
  restart.chain_component = component;
  ++planned_restarts_;
  execute(std::move(restart));
  return true;
}

void Recoverer::execute(Action restart) {
  restart.components = tree_.group_components(restart.node);
  assert(!restart.components.empty());
  restart.action_id = next_action_id_++;

  // Attempt budget: a chain that keeps consuming restarts — whether the
  // failure persists or the restarts themselves keep timing out — is parked
  // rather than retried forever.
  if (budget_exhausted_then_park(restart)) return;
  if (!restart.planned) ++restart.chain_attempts;

  // Escalation ordering (DAG modes): a chosen cell that contains an
  // in-flight descendant absorbs that action before anything else happens —
  // the wider restart re-kills its members, so the narrower action is
  // redundant and must never overlap it.
  absorb_conflicting(restart);

  // Backoff (crash-loop pacing): successive attempts on the same cell are
  // spaced out exponentially. The action claims its cell immediately (it
  // enters actions_, so conflicting reports queue), but the kill/start
  // itself waits.
  Duration delay = Duration::zero();
  if (config_.backoff_base > Duration::zero()) {
    CellBackoff& backoff = backoff_[restart.node];
    // Gradual decay: each full quiet backoff_decay forgets one streak step,
    // so a long-idle cell climbs back down instead of snapping to zero.
    if (backoff.streak > 0 && config_.backoff_decay > Duration::zero()) {
      const int steps = static_cast<int>((sim_.now() - backoff.last).to_seconds() /
                                         config_.backoff_decay.to_seconds());
      backoff.streak = std::max(0, backoff.streak - steps);
    }
    if (backoff.streak > 0) {
      // Clamped to [base, cap] on every path: neither decay nor a sub-unity
      // factor may pace attempts tighter than base.
      const double wait_s =
          std::clamp(config_.backoff_base.to_seconds() *
                         std::pow(config_.backoff_factor, backoff.streak - 1),
                     config_.backoff_base.to_seconds(),
                     config_.backoff_cap.to_seconds());
      const util::TimePoint allowed = backoff.last + Duration::seconds(wait_s);
      if (allowed > sim_.now()) delay = allowed - sim_.now();
    }
  }

  const std::uint64_t action_id = restart.action_id;
  if (delay > Duration::zero()) {
    ++backoffs_applied_;
    obs::instant(sim_.now(), "recover", "rec.backoff", "rec",
                 {{"component", restart.reported_component},
                  {"cell", tree_.cell(restart.node).label},
                  {"delay_s", util::format_fixed(delay.to_seconds(), 3)}});
    obs::incr("rec.backoffs");
    LogLine(LogLevel::kInfo, sim_.now(), "rec")
        << "backing off " << util::format_fixed(delay.to_seconds(), 3)
        << " s before restarting cell " << tree_.cell(restart.node).label;
    actions_.emplace(action_id, std::move(restart));
    note_in_flight_peak();
    sim_.schedule_after(delay, "rec.backoff", [this, action_id] {
      // A vanished id means an escalation absorbed this action meanwhile.
      dispatch(action_id);
    });
    return;
  }

  actions_.emplace(action_id, std::move(restart));
  note_in_flight_peak();
  dispatch(action_id);
}

void Recoverer::absorb_conflicting(const Action& absorber) {
  if (config_.dispatch == DispatchMode::kSerial) return;  // nothing concurrent
  // The nested-or-disjoint group property plus the up-front membership drop
  // leave exactly one overlap shape here: the absorber's cell strictly
  // contains the victim's.
  std::vector<std::uint64_t> victims;
  for (const auto& [id, action] : actions_) {
    if (action.node != absorber.node &&
        tree_.is_ancestor(absorber.node, action.node)) {
      victims.push_back(id);
    }
  }
  for (const std::uint64_t id : victims) {
    const auto it = actions_.find(id);
    Action& victim = it->second;
    ++absorbed_actions_;
    obs::instant(sim_.now(), "recover", "rec.absorb", "rec",
                 {{"component", victim.reported_component},
                  {"cell", tree_.cell(victim.node).label},
                  {"into", tree_.cell(absorber.node).label}});
    obs::incr("rec.absorbed");
    LogLine(LogLevel::kInfo, sim_.now(), "rec")
        << "restart of cell " << tree_.cell(victim.node).label
        << " absorbed by escalation to " << tree_.cell(absorber.node).label;
    if (victim.deadline_event.valid()) sim_.cancel(victim.deadline_event);
    if (victim.dispatched) {
      // Members stay masked: the absorber covers a superset and re-masks at
      // dispatch; its restart_group supersedes the in-flight kill.
      obs::end_span(sim_.now(), victim.trace_span, {{"outcome", "absorbed"}});
    }
    actions_.erase(it);
  }
}

void Recoverer::dispatch(std::uint64_t action_id) {
  const auto it = actions_.find(action_id);
  if (it == actions_.end()) return;
  Action& restart = it->second;
  restart.dispatched = true;
  LogLine(LogLevel::kInfo, sim_.now(), "rec")
      << "restarting cell " << tree_.cell(restart.node).label << " ("
      << util::join(restart.components, ",") << ") for failure of "
      << restart.reported_component
      << (restart.escalation_level > 0
              ? " [escalation level " + std::to_string(restart.escalation_level) + "]"
              : "");

  restart.trace_span = obs::begin_span(
      sim_.now(), "recover", "rec.restart", "rec",
      {{"component", restart.reported_component},
       {"cell", tree_.cell(restart.node).label},
       {"group", util::join(restart.components, ",")},
       {"escalation", std::to_string(restart.escalation_level)},
       {"planned", restart.planned ? "1" : "0"}});
  send_mask(restart.components, true);

  if (config_.backoff_base > Duration::zero()) {
    CellBackoff& backoff = backoff_[restart.node];
    ++backoff.streak;
    backoff.last = sim_.now();
  }

  // Deadline before dispatch: ProcessControl may complete synchronously.
  if (config_.restart_deadline > Duration::zero()) {
    restart.deadline_event =
        sim_.schedule_after(config_.restart_deadline, "rec.restart-deadline",
                            [this, action_id] { on_restart_timeout(action_id); });
  }
  const std::vector<std::string> components = restart.components;
  process_control_.restart_group(
      components, [this, action_id] { on_restart_complete(action_id); });
}

void Recoverer::on_restart_timeout(std::uint64_t action_id) {
  const auto it = actions_.find(action_id);
  if (it == actions_.end()) return;
  const Action failed = it->second;
  actions_.erase(it);

  ++restart_timeouts_;
  obs::end_span(sim_.now(), failed.trace_span, {{"outcome", "timeout"}});
  obs::instant(sim_.now(), "restart", "restart.timeout", "rec",
               {{"component", failed.reported_component},
                {"cell", tree_.cell(failed.node).label},
                {"escalation", std::to_string(failed.escalation_level)}});
  obs::incr("rec.restart_timeouts");
  LogLine(LogLevel::kWarn, sim_.now(), "rec")
      << "restart of cell " << tree_.cell(failed.node).label << " for "
      << failed.reported_component << " exceeded its deadline; escalating";

  // Whatever checkpointed state the failed attempt may have warm-started
  // from is now fault-suspected (ISSUE 3 — bad state is exactly what a
  // restart is meant to shed). The shed is tier-aware (ISSUE 7): the
  // implementation condemns only the local snapshots that could have fed
  // the failed attempt; partner replicas and stable copies survive, so the
  // superseding attempt may still warm-start from an unsuspected tier.
  process_control_.discard_checkpoints(failed.components);

  // The hung group's members stay masked; the superseding restart below
  // covers a superset and re-kills the stragglers. No oracle feedback: a
  // restart that never finished says nothing about cure sets.
  Action retry;
  retry.reported_component = failed.reported_component;
  retry.report_time = failed.report_time;
  retry.escalation_level = failed.escalation_level + 1;
  retry.chain_component = failed.chain_component;
  // A timed-out rejuvenation turns reactive: the cell is now genuinely
  // broken. Treat it as a fresh chain on the reported component.
  retry.chain_attempts = failed.planned ? 0 : failed.chain_attempts;
  retry.chain_touched = failed.chain_touched;
  retry.chain_touched.insert(failed.components.begin(), failed.components.end());
  ++escalations_;
  obs::instant(sim_.now(), "recover", "rec.escalate", "rec",
               {{"component", failed.reported_component},
                {"level", std::to_string(retry.escalation_level)},
                {"from", "timeout"}});
  obs::incr("rec.escalations");

  if (failed.node == tree_.root()) {
    // Even the full-system restart hangs: after the tolerated number of
    // root-level rounds this chain is unrecoverable by restart. park()
    // sweeps up the hung stragglers and frees the healthy members.
    if (note_root_restart_then_maybe_park(failed.reported_component,
                                          &retry.chain_touched)) {
      return;
    }
  }

  OracleQuery query;
  query.tree = &tree_;
  query.failed_component = failed.reported_component;
  query.escalation_level = retry.escalation_level;
  query.previous_node = failed.node;
  query.trace_now = sim_.now().to_seconds();
  retry.node = oracle_.choose(query);
  execute(std::move(retry));
}

void Recoverer::on_restart_complete(std::uint64_t action_id) {
  // Stale completions are real under restart-time faults: a hung restart
  // that finishes after its deadline fired, a superseded group draining, or
  // an action an escalation absorbed.
  const auto it = actions_.find(action_id);
  if (it == actions_.end()) return;
  const Action finished = it->second;
  if (finished.deadline_event.valid()) sim_.cancel(finished.deadline_event);
  actions_.erase(it);

  obs::end_span(sim_.now(), finished.trace_span);
  obs::incr(finished.soft ? "rec.soft_completed" : "rec.restarts");
  obs::incr("restarts.cell." + tree_.cell(finished.node).label);
  obs::observe("recovery.action_seconds",
               (sim_.now() - finished.report_time).to_seconds());

  send_mask(finished.components, false);

  RecoveryRecord record;
  record.reported_component = finished.reported_component;
  record.node = finished.node;
  record.restarted = finished.components;
  record.escalation_level = finished.escalation_level;
  record.planned = finished.planned;
  record.soft = finished.soft;
  record.report_time = finished.report_time;
  record.complete_time = sim_.now();
  history_.push_back(record);

  // kSerial keeps exactly one completion record (the legacy "last restart"
  // escalation context); the DAG modes keep one per live chain.
  if (config_.dispatch == DispatchMode::kSerial) recent_.clear();
  prune_recent();
  CompletionRecord completion;
  completion.id = finished.action_id;
  completion.node = finished.node;
  completion.components = finished.components;
  completion.escalation_level = finished.escalation_level;
  completion.soft = finished.soft;
  completion.complete_time = sim_.now();
  completion.chain_component = finished.chain_component;
  completion.chain_attempts = finished.chain_attempts;
  // Soft actions carry no oracle recommendation; never feed the oracle
  // about a node it did not choose.
  completion.feedback_sent = finished.soft;
  recent_.push_back(completion);

  for (const auto& name : finished.components) ++completion_epoch_[name];

  // Positive feedback once the escalation window passes without recurrence
  // (an escalation meanwhile removes or settles the record).
  const std::uint64_t record_id = completion.id;
  sim_.schedule_after(config_.escalation_window, "rec.feedback",
                      [this, record_id] {
                        for (auto& rec : recent_) {
                          if (rec.id != record_id) continue;
                          if (!rec.feedback_sent) {
                            obs::instant(sim_.now(), "oracle", "oracle.feedback",
                                         "rec",
                                         {{"component", rec.chain_component},
                                          {"cell", tree_.cell(rec.node).label},
                                          {"cured", "1"}});
                            oracle_.feedback(rec.chain_component, rec.node,
                                             /*cured=*/true);
                            rec.feedback_sent = true;
                          }
                          break;
                        }
                      });

  drain_queue();
}

void Recoverer::enqueue_report(const std::string& component) {
  const auto it = completion_epoch_.find(component);
  const std::uint64_t epoch = it == completion_epoch_.end() ? 0 : it->second;
  // Dedup on (component, epoch): a queued report from an older failure epoch
  // is already doomed to drop at drain, and a fresh-epoch report is new
  // evidence that must survive it — deduplicating on the name alone would
  // let the stale entry swallow the new failure.
  for (const auto& entry : queue_) {
    if (entry.component == component && entry.epoch == epoch) return;
  }
  queue_.push_back({component, epoch});
}

bool Recoverer::should_drop(const QueuedReport& entry) const {
  if (is_parked(entry.component)) return true;
  const auto it = completion_epoch_.find(entry.component);
  const std::uint64_t epoch = it == completion_epoch_.end() ? 0 : it->second;
  // A restart covering this component completed after the report queued: it
  // either cured the failure, or FD re-detects it and escalation takes over.
  // An entry from the *current* epoch saw no covering restart — it must
  // dispatch no matter what completed before it was queued.
  return entry.epoch < epoch;
}

bool Recoverer::blocked_in_queue(const QueuedReport& entry) const {
  if (config_.dispatch == DispatchMode::kSerial) return !actions_.empty();
  // In-flight membership is not a block: handle_report drops the entry.
  if (component_in_flight(entry.component)) return false;
  const auto cell = tree_.lowest_cell_covering(entry.component);
  return cell.has_value() && conflicts_with_in_flight(*cell);
}

void Recoverer::drain_queue() {
  if (traffic_active()) {
    // Touched (request-promoted) entries dispatch as soon as no in-flight
    // conflict remains; untouched entries keep waiting for the background
    // lazy drain — an action completing must not stampede the whole queue.
    std::deque<QueuedReport> pending = std::move(queue_);
    queue_.clear();
    while (!pending.empty()) {
      const QueuedReport entry = pending.front();
      pending.pop_front();
      if (should_drop(entry)) continue;
      if (!entry.touched || blocked_in_queue(entry)) {
        queue_.push_back(entry);
        continue;
      }
      dispatch_report(entry.component);
    }
    if (!queue_.empty()) schedule_lazy_drain();
    return;
  }
  if (config_.dispatch == DispatchMode::kOnDemand) {
    // Scan the whole queue: any entry whose conflict has cleared dispatches,
    // regardless of position; still-blocked entries keep their order.
    std::deque<QueuedReport> pending = std::move(queue_);
    queue_.clear();
    while (!pending.empty()) {
      const QueuedReport entry = pending.front();
      pending.pop_front();
      if (should_drop(entry)) continue;
      if (blocked_in_queue(entry)) {
        queue_.push_back(entry);
        continue;
      }
      handle_report(entry.component);
    }
    return;
  }
  // kSerial and kDag: FIFO with head-of-line blocking.
  while (!queue_.empty()) {
    const QueuedReport entry = queue_.front();
    if (should_drop(entry)) {
      queue_.pop_front();
      continue;
    }
    if (blocked_in_queue(entry)) break;
    queue_.pop_front();
    handle_report(entry.component);
  }
}

void Recoverer::send_mask(const std::vector<std::string>& components, bool mask) {
  std::vector<std::string> effective = components;
  if (!mask && !parked_.empty()) {
    // Parked components never come back off the mask: the station operates
    // degraded without them until an operator intervenes.
    effective.erase(std::remove_if(effective.begin(), effective.end(),
                                   [this](const std::string& name) {
                                     return parked_.contains(name);
                                   }),
                    effective.end());
    if (effective.empty()) return;
  }
  for (const auto& name : effective) {
    if (mask) {
      masked_.insert(name);
    } else {
      masked_.erase(name);
    }
  }
  obs::instant(sim_.now(), "recover", mask ? "rec.mask" : "rec.unmask", "rec",
               {{"components", util::join(effective, ",")}});
  msg::Message command = msg::make_command(config_.rec_name, config_.fd_name,
                                           seq_++, mask ? "mask" : "unmask");
  command.body.set_attr("components", util::join(effective, ","));
  link_.send(command);
}

void Recoverer::set_fd_restarter(std::function<void()> restarter) {
  fd_restarter_ = std::move(restarter);
}

void Recoverer::monitor_fd() {
  fd_loop_ = std::make_unique<sim::PeriodicTask>(
      sim_, "rec.ping-fd", config_.fd_ping_period, [this] { ping_fd(); });
  fd_loop_->start();
}

void Recoverer::ping_fd() {
  if (!alive_) return;
  if (fd_restart_in_flight_) return;
  if (fd_outstanding_seq_ != 0) return;
  const std::uint64_t seq = seq_++;
  fd_outstanding_seq_ = seq;
  link_.send(msg::make_ping(config_.rec_name, config_.fd_name, seq));
  fd_timeout_ = sim_.schedule_after(config_.fd_ping_timeout, "rec.fd-timeout",
                                    [this, seq] {
                                      if (fd_outstanding_seq_ == seq) {
                                        fd_outstanding_seq_ = 0;
                                        on_fd_timeout();
                                      }
                                    });
}

void Recoverer::on_fd_timeout() {
  if (!alive_ || !fd_restarter_) return;
  obs::instant(sim_.now(), "detect", "rec.fd-unresponsive", "rec");
  obs::incr("rec.fd_restarts");
  LogLine(LogLevel::kWarn, sim_.now(), "rec")
      << "fd unresponsive; initiating fd recovery";
  fd_restart_in_flight_ = true;
  fd_restarter_();
  sim_.schedule_after(config_.fd_ping_period * 5.0, "rec.fd-grace",
                      [this] { fd_restart_in_flight_ = false; });
}

}  // namespace mercury::core
