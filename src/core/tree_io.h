// Restart-tree persistence in the station's own XML dialect.
//
// "REC uses a restart tree data structure and a simple policy to choose
// which module(s) to restart" (§2.2) — operationally that tree is
// configuration: operators evolve it (§4) and REC reloads it after its own
// restarts. Format:
//
//   <restart-tree>
//     <cell label="R_mercury">
//       <cell label="R_[ses,str]">
//         <component name="ses"/>
//         <component name="str"/>
//       </cell>
//       ...
//     </cell>
//   </restart-tree>
//
// Round-trips exactly (labels, attachment points, child order) and
// validates on load, so a hand-edited tree that violates the structural
// invariants is rejected with a useful message instead of driving REC.
#pragma once

#include <string>
#include <string_view>

#include "core/restart_tree.h"
#include "util/result.h"

namespace mercury::core {

/// Serialize (pretty-printed XML document).
std::string tree_to_xml(const RestartTree& tree);

/// Parse + validate.
util::Result<RestartTree> tree_from_xml(std::string_view xml_text);

}  // namespace mercury::core
