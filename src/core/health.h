// Component health summary beacons (paper §7).
//
// "We are in the process of implementing component health summary beacons,
// which include a digest of internal metrics such as resource usage, data
// structure consistency, connectivity checks, latency between key code
// points, warnings of suspect behavior that has not yet caused a failure,
// and if applicable, information about detectable hard failures."
//
// Beacons ride mbus as telemetry messages (verb "health"); the
// HealthMonitor consumes them and turns sustained degradation into
// *proactive* rejuvenation requests — planned restarts taken before the
// aging component fails on its own, scheduled into maintenance windows
// (§5.2: planned downtime is cheaper than unplanned downtime).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "msg/message.h"
#include "util/result.h"
#include "util/time.h"

namespace mercury::core {

struct HealthBeacon {
  std::string component;
  std::uint64_t seq = 0;
  /// Seconds since this component's last (re)start.
  double uptime_s = 0.0;
  /// Resource usage digest.
  double memory_mb = 0.0;
  double queue_depth = 0.0;
  /// Latency between key code points, milliseconds.
  double internal_latency_ms = 0.0;
  /// Connectivity checks (peer links, serial port, ...).
  bool connectivity_ok = true;
  /// Data-structure consistency self-checks.
  bool consistency_ok = true;
  /// Warnings of suspect behavior that has not yet caused a failure.
  std::vector<std::string> warnings;
  /// Detectable hard failure (e.g. the radio hardware stopped responding).
  bool hard_failure_suspected = false;

  bool operator==(const HealthBeacon&) const = default;
};

/// Beacon -> command-language telemetry message (to the health monitor).
msg::Message encode_beacon(const HealthBeacon& beacon, const std::string& to);

/// Telemetry message -> beacon. Fails unless kind == telemetry and
/// verb == "health" with the required fields.
util::Result<HealthBeacon> decode_beacon(const msg::Message& message);

}  // namespace mercury::core
