// The paper's explicit assumptions (§4), as checkable predicates.
//
//   A_cure:        all failures are detectable by FD and curable by restart.
//   A_entire:      a failure in any component makes the whole system
//                  temporarily unavailable (no functional redundancy).
//   A_oracle:      the oracle always recommends the minimal restart policy.
//   A_independent: restarting a group does not induce failures in other
//                  groups.
//
// Table 3 annotates each tree with the assumptions it embodies; these
// checks regenerate those annotations from the (tree, system-model) pair
// instead of by hand.
#pragma once

#include <string>
#include <vector>

#include "core/availability.h"
#include "core/restart_tree.h"

namespace mercury::core {

struct AssumptionReport {
  bool holds = true;
  std::vector<std::string> violations;
};

/// A_cure: every failure class's cure set is covered by the tree (the root
/// group contains it), so *some* restart cures everything.
AssumptionReport check_a_cure(const RestartTree& tree, const SystemModel& model);

/// A_independent: no coupled pair is split across restart cells in a way
/// that makes one side's restart wedge the other (both on one cell, or not
/// both in the tree). §4.3 shows tree III violating this for ses/str.
AssumptionReport check_a_independent(const RestartTree& tree,
                                     const SystemModel& model);

/// A_oracle is a property of the oracle, not the tree: it holds exactly for
/// the minimal restart policy. `oracle_p_low`/`p_high` > 0 violate it.
AssumptionReport check_a_oracle(double oracle_p_low, double oracle_p_high);

/// A_entire holds for Mercury by construction (no redundancy); provided for
/// symmetry and for systems that add hot standbys.
AssumptionReport check_a_entire(bool has_functional_redundancy);

}  // namespace mercury::core
