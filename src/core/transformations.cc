#include "core/transformations.h"

#include <algorithm>

#include "core/mercury_trees.h"
#include "obs/trace.h"

namespace mercury::core {

using util::Error;
using util::Result;

namespace {

/// Transformations are pure tree rewrites with no clock of their own, so the
/// trace instant sits at t=0 of whichever run applies them; `op`/`target`
/// identify the rewrite and `cells` the resulting tree size.
void trace_transform(const std::string& op, const std::string& target,
                     const RestartTree& tree) {
  obs::instant(util::TimePoint::origin(), "tree", "tree.transform", "tree",
               {{"op", op},
                {"target", target},
                {"cells", std::to_string(tree.size())}});
  obs::incr("tree.transforms");
}

}  // namespace

Result<RestartTree> depth_augment(RestartTree tree, NodeId cell) {
  if (cell >= tree.size()) return Error("depth_augment: no such cell");
  const auto components = tree.cell(cell).components;  // copy; we mutate below
  if (components.size() < 2) {
    return Error("depth_augment: cell needs at least two attached components");
  }
  for (const auto& component : components) {
    tree.detach_component(component);
    const NodeId leaf = tree.add_cell(cell, "R_" + component);
    tree.attach_component(leaf, component);
  }
  if (auto s = tree.validate(); !s.ok()) return s.error().wrap("depth_augment");
  trace_transform("depth_augment", tree.cell(cell).label, tree);
  return tree;
}

Result<RestartTree> split_component(RestartTree tree, const std::string& component,
                                    const std::vector<std::string>& parts) {
  const auto cell = tree.find_component(component);
  if (!cell) return Error("split_component: '" + component + "' not in tree");
  if (parts.size() < 2) return Error("split_component: need at least two parts");
  for (const auto& part : parts) {
    if (tree.find_component(part)) {
      return Error("split_component: part '" + part + "' already in tree");
    }
  }

  const bool dedicated_leaf =
      tree.is_leaf(*cell) && tree.cell(*cell).components.size() == 1;
  tree.detach_component(component);

  if (dedicated_leaf) {
    // The component had its own cell: each part becomes a sibling leaf under
    // the old cell's parent (tree II -> II': fedr and pbcom are top-level).
    const NodeId parent = tree.parent(*cell);
    if (auto s = tree.remove_empty_cell(*cell); !s.ok()) {
      return s.error().wrap("split_component");
    }
    // remove_empty_cell invalidated ids; `parent` was an ancestor of *cell,
    // so its index is unchanged iff parent < *cell, which holds for any
    // ancestor (cells are appended after their parents).
    for (const auto& part : parts) {
      const NodeId leaf = tree.add_cell(parent, "R_" + part);
      tree.attach_component(leaf, part);
    }
  } else {
    // Shared cell (e.g. tree I root): the parts join it directly, keeping
    // the "everything restarts together" semantics of the original cell.
    for (const auto& part : parts) {
      tree.attach_component(*cell, part);
    }
  }
  if (auto s = tree.validate(); !s.ok()) return s.error().wrap("split_component");
  trace_transform("split_component", component, tree);
  return tree;
}

Result<RestartTree> group_under_joint(RestartTree tree, const std::string& a,
                                      const std::string& b,
                                      const std::string& joint_label) {
  const auto cell_a = tree.find_component(a);
  const auto cell_b = tree.find_component(b);
  if (!cell_a || !cell_b) return Error("group_under_joint: component not in tree");
  if (*cell_a == *cell_b) return Error("group_under_joint: already share a cell");
  if (!tree.is_leaf(*cell_a) || !tree.is_leaf(*cell_b)) {
    return Error("group_under_joint: components must sit on leaf cells");
  }
  if (tree.parent(*cell_a) != tree.parent(*cell_b)) {
    return Error("group_under_joint: cells must be siblings");
  }
  const NodeId parent = tree.parent(*cell_a);

  // Drop the two leaves, then grow the joint cell with fresh leaves. The
  // higher index must be removed first so the lower one stays valid.
  const NodeId first = std::min(*cell_a, *cell_b);
  const NodeId second = std::max(*cell_a, *cell_b);
  tree.detach_component(a);
  tree.detach_component(b);
  if (auto s = tree.remove_empty_cell(second); !s.ok()) return s.error();
  if (auto s = tree.remove_empty_cell(first); !s.ok()) return s.error();

  const NodeId joint = tree.add_cell(parent, joint_label);
  const NodeId leaf_a = tree.add_cell(joint, "R_" + a);
  tree.attach_component(leaf_a, a);
  const NodeId leaf_b = tree.add_cell(joint, "R_" + b);
  tree.attach_component(leaf_b, b);

  if (auto s = tree.validate(); !s.ok()) return s.error().wrap("group_under_joint");
  trace_transform("group_under_joint", a + "+" + b, tree);
  return tree;
}

Result<RestartTree> consolidate_group(RestartTree tree, const std::string& a,
                                      const std::string& b) {
  const auto cell_a = tree.find_component(a);
  const auto cell_b = tree.find_component(b);
  if (!cell_a || !cell_b) return Error("consolidate_group: component not in tree");
  if (*cell_a == *cell_b) return Error("consolidate_group: already consolidated");
  if (!tree.is_leaf(*cell_a) || !tree.is_leaf(*cell_b)) {
    return Error("consolidate_group: components must sit on leaf cells");
  }
  if (tree.parent(*cell_a) != tree.parent(*cell_b)) {
    return Error("consolidate_group: cells must be siblings");
  }

  // Move b (and any cellmates) into a's cell; remove b's husk.
  const auto moved = tree.cell(*cell_b).components;
  for (const auto& component : moved) {
    tree.detach_component(component);
    tree.attach_component(*cell_a, component);
  }
  if (auto s = tree.remove_empty_cell(*cell_b); !s.ok()) return s.error();

  // cell_a's id survives unless it was above cell_b, in which case it
  // shifted; recompute via the component.
  const auto merged = tree.find_component(a);
  tree.set_label(*merged, "R_[" + a + "," + b + "]");

  if (auto s = tree.validate(); !s.ok()) return s.error().wrap("consolidate_group");
  trace_transform("consolidate_group", a + "+" + b, tree);
  return tree;
}

Result<RestartTree> promote_component(RestartTree tree, const std::string& component) {
  const auto cell = tree.find_component(component);
  if (!cell) return Error("promote_component: '" + component + "' not in tree");
  if (!tree.is_leaf(*cell)) {
    return Error("promote_component: component must sit on a leaf cell");
  }
  if (tree.cell(*cell).components.size() != 1) {
    return Error("promote_component: leaf must hold only this component");
  }
  const NodeId parent = tree.parent(*cell);
  if (parent == kInvalidNode) {
    return Error("promote_component: component is already at the root");
  }
  if (tree.cell(parent).children.size() < 2) {
    // Promoting onto a chain node changes nothing: the parent's group would
    // equal the old leaf's group.
    return Error("promote_component: parent has no other descendants");
  }

  tree.detach_component(component);
  if (auto s = tree.remove_empty_cell(*cell); !s.ok()) return s.error();
  // Ancestor indices are stable under removal of a descendant (parents
  // always precede children in the cell array).
  tree.attach_component(parent, component);
  tree.set_label(parent, "R_" + component + "+");

  if (auto s = tree.validate(); !s.ok()) return s.error().wrap("promote_component");
  trace_transform("promote_component", component, tree);
  return tree;
}

Result<std::vector<RestartTree>> evolve_mercury_trees() {
  namespace names = component_names;
  std::vector<RestartTree> stages;
  stages.push_back(make_tree_i());

  auto tree_ii = depth_augment(stages.back(), stages.back().root());
  if (!tree_ii.ok()) return tree_ii.error();
  stages.push_back(std::move(tree_ii).value());

  auto tree_ii_prime =
      split_component(stages.back(), names::kFedrcom, {names::kFedr, names::kPbcom});
  if (!tree_ii_prime.ok()) return tree_ii_prime.error();
  stages.push_back(std::move(tree_ii_prime).value());

  auto tree_iii = group_under_joint(stages.back(), names::kFedr, names::kPbcom,
                                    "R_[fedr,pbcom]");
  if (!tree_iii.ok()) return tree_iii.error();
  stages.push_back(std::move(tree_iii).value());

  auto tree_iv = consolidate_group(stages.back(), names::kSes, names::kStr);
  if (!tree_iv.ok()) return tree_iv.error();
  stages.push_back(std::move(tree_iv).value());

  auto tree_v = promote_component(stages.back(), names::kPbcom);
  if (!tree_v.ok()) return tree_v.error();
  stages.push_back(std::move(tree_v).value());

  return stages;
}

}  // namespace mercury::core
