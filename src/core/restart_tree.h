// Restart trees (paper §3.1).
//
// "A recursively restartable system can be described by a restart tree — a
// hierarchy of restartable components, in which nodes are highly
// fault-isolated and a restart at a node will restart the entire
// corresponding subtree."
//
// Nodes are restart *cells*; each cell may have software components attached
// (the round nodes in the paper's figures) and child cells. "Pushing the
// button" on a cell restarts every component attached anywhere in its
// subtree. A subtree is a restart *group* (§3.2).
//
// The tree is a value type: transformations (§4) are pure functions from
// tree to tree, which makes the algebra property-testable.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "util/result.h"

namespace mercury::core {

/// Index of a cell within a RestartTree. Stable across copies of the same
/// tree; invalidated by structural edits.
using NodeId = std::uint32_t;
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

class RestartTree {
 public:
  struct Cell {
    /// Human-readable cell label, e.g. "R_BC" or "[ses,str]".
    std::string label;
    /// Components restarted when this cell (or an ancestor) restarts,
    /// attached directly to this cell. Sorted, unique.
    std::vector<std::string> components;
    NodeId parent = kInvalidNode;
    std::vector<NodeId> children;
  };

  RestartTree();
  explicit RestartTree(std::string root_label);

  NodeId root() const { return 0; }
  std::size_t size() const { return cells_.size(); }
  const Cell& cell(NodeId id) const;

  /// Add a child cell under `parent`; returns its id.
  NodeId add_cell(NodeId parent, std::string label);

  /// Attach a component name to a cell. A component may be attached to at
  /// most one cell in the tree (checked by validate()).
  void attach_component(NodeId id, std::string component);

  /// Detach a component wherever it is attached; no-op if absent.
  void detach_component(const std::string& component);

  void set_label(NodeId id, std::string label);

  /// Remove a cell that has no children and no attached components (the
  /// empty husk left behind by reduction transformations). Fails on the
  /// root or a non-empty cell. Invalidates all NodeIds.
  util::Status remove_empty_cell(NodeId id);

  // --- Queries -----------------------------------------------------------

  /// All components in the subtree rooted at `id` — the restart group's
  /// membership, i.e. what a restart at `id` restarts. Sorted.
  std::vector<std::string> group_components(NodeId id) const;

  /// Cell a component is attached to, or nullopt.
  std::optional<NodeId> find_component(const std::string& component) const;

  /// Lowest cell whose restart group contains the component (the cell it is
  /// attached to). For choosing the minimal restart for a failure at that
  /// component.
  std::optional<NodeId> lowest_cell_covering(const std::string& component) const;

  /// Lowest cell whose restart group is a superset of `components`
  /// (the minimal cure node for a failure with that cure set). nullopt if
  /// even the root does not cover them.
  std::optional<NodeId> lowest_cell_covering_all(
      const std::vector<std::string>& components) const;

  NodeId parent(NodeId id) const;
  bool is_leaf(NodeId id) const;
  bool is_ancestor(NodeId ancestor, NodeId descendant) const;
  /// True when the restart groups of `a` and `b` overlap, i.e. restarting
  /// both cells concurrently would be unsafe. Because any two groups are
  /// either disjoint or nested (§3.2), this is exactly the
  /// ancestor-or-descendant (or equal) relation: sibling subtrees never
  /// conflict.
  bool conflicts(NodeId a, NodeId b) const;
  /// Depth of `id` (root = 0).
  std::size_t depth(NodeId id) const;
  /// Path from `id` up to and including the root.
  std::vector<NodeId> path_to_root(NodeId id) const;

  /// All cell ids in pre-order.
  std::vector<NodeId> preorder() const;

  /// Every component attached anywhere in the tree. Sorted.
  std::vector<std::string> all_components() const;

  /// Number of restart groups = number of cells (each subtree is a group;
  /// §3.2: the example 5-cell tree "contains 5 restart groups").
  std::size_t group_count() const { return cells_.size(); }

  /// Structural invariants: single root, acyclic parent/child links, every
  /// component attached exactly once, no empty-subtree cells (a cell with no
  /// components anywhere below it restarts nothing).
  util::Status validate() const;

  /// ASCII rendering for logs and bench output.
  std::string render() const;

  bool operator==(const RestartTree& other) const;

 private:
  void collect_components(NodeId id, std::vector<std::string>& out) const;
  std::vector<Cell> cells_;
};

/// The tree's restart semantics as data: the sorted multiset of restart
/// groups (each group = sorted component set of one cell's subtree). Two
/// trees with the same signature offer exactly the same restart choices,
/// regardless of labels or cell numbering.
std::vector<std::vector<std::string>> group_signature(const RestartTree& tree);

/// Same restart semantics (equal group signatures).
bool equivalent(const RestartTree& a, const RestartTree& b);

}  // namespace mercury::core
