// The five restart trees of the paper's evaluation (§4, Table 3).
//
//   Tree I   — trivial: one cell, all five components; only full reboots.
//   Tree II  — simple depth augmentation: one leaf per component (Fig. 3).
//   Tree II' — tree II with fedrcom split into fedr+pbcom as top-level
//              leaves (intermediate tree in Fig. 4).
//   Tree III — subtree depth augmentation: joint [fedr,pbcom] node (Fig. 4).
//   Tree IV  — group consolidation of ses+str into one leaf (Fig. 5).
//   Tree V   — node promotion: pbcom promoted onto the joint node, fedr
//              beneath it (Fig. 6).
#pragma once

#include <string>
#include <vector>

#include "core/restart_tree.h"

namespace mercury::core {

/// Well-known Mercury component names.
namespace component_names {
inline const std::string kMbus = "mbus";
inline const std::string kFedrcom = "fedrcom";  // fused (trees I, II)
inline const std::string kFedr = "fedr";        // split (trees II'..V)
inline const std::string kPbcom = "pbcom";      // split (trees II'..V)
inline const std::string kSes = "ses";
inline const std::string kStr = "str";
inline const std::string kRtu = "rtu";
inline const std::string kFd = "fd";
inline const std::string kRec = "rec";
}  // namespace component_names

enum class MercuryTree { kTreeI, kTreeII, kTreeIIPrime, kTreeIII, kTreeIV, kTreeV };

std::string to_string(MercuryTree tree);

/// True for trees that use the split fedr/pbcom pair instead of fedrcom.
bool uses_split_fedrcom(MercuryTree tree);

RestartTree make_tree_i();
RestartTree make_tree_ii();
RestartTree make_tree_ii_prime();
RestartTree make_tree_iii();
RestartTree make_tree_iv();
RestartTree make_tree_v();

RestartTree make_mercury_tree(MercuryTree tree);

/// All five published trees in evaluation order (II' excluded).
std::vector<MercuryTree> published_trees();

}  // namespace mercury::core
