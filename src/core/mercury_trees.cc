#include "core/mercury_trees.h"

#include <cassert>

namespace mercury::core {

namespace names = component_names;

std::string to_string(MercuryTree tree) {
  switch (tree) {
    case MercuryTree::kTreeI: return "I";
    case MercuryTree::kTreeII: return "II";
    case MercuryTree::kTreeIIPrime: return "II'";
    case MercuryTree::kTreeIII: return "III";
    case MercuryTree::kTreeIV: return "IV";
    case MercuryTree::kTreeV: return "V";
  }
  return "?";
}

bool uses_split_fedrcom(MercuryTree tree) {
  return tree != MercuryTree::kTreeI && tree != MercuryTree::kTreeII;
}

RestartTree make_tree_i() {
  RestartTree tree("R_mercury");
  tree.attach_component(tree.root(), names::kMbus);
  tree.attach_component(tree.root(), names::kFedrcom);
  tree.attach_component(tree.root(), names::kSes);
  tree.attach_component(tree.root(), names::kStr);
  tree.attach_component(tree.root(), names::kRtu);
  return tree;
}

RestartTree make_tree_ii() {
  RestartTree tree("R_mercury");
  for (const auto& name :
       {names::kMbus, names::kFedrcom, names::kSes, names::kStr, names::kRtu}) {
    const NodeId cell = tree.add_cell(tree.root(), "R_" + name);
    tree.attach_component(cell, name);
  }
  return tree;
}

RestartTree make_tree_ii_prime() {
  RestartTree tree("R_mercury");
  for (const auto& name : {names::kMbus, names::kFedr, names::kPbcom, names::kSes,
                           names::kStr, names::kRtu}) {
    const NodeId cell = tree.add_cell(tree.root(), "R_" + name);
    tree.attach_component(cell, name);
  }
  return tree;
}

RestartTree make_tree_iii() {
  RestartTree tree("R_mercury");
  for (const auto& name : {names::kMbus, names::kSes, names::kStr, names::kRtu}) {
    const NodeId cell = tree.add_cell(tree.root(), "R_" + name);
    tree.attach_component(cell, name);
  }
  const NodeId joint = tree.add_cell(tree.root(), "R_[fedr,pbcom]");
  const NodeId fedr = tree.add_cell(joint, "R_fedr");
  tree.attach_component(fedr, names::kFedr);
  const NodeId pbcom = tree.add_cell(joint, "R_pbcom");
  tree.attach_component(pbcom, names::kPbcom);
  return tree;
}

RestartTree make_tree_iv() {
  RestartTree tree("R_mercury");
  const NodeId mbus = tree.add_cell(tree.root(), "R_mbus");
  tree.attach_component(mbus, names::kMbus);

  // Group consolidation: ses and str share one leaf cell, so either failure
  // restarts both in parallel (Fig. 5).
  const NodeId ses_str = tree.add_cell(tree.root(), "R_[ses,str]");
  tree.attach_component(ses_str, names::kSes);
  tree.attach_component(ses_str, names::kStr);

  const NodeId rtu = tree.add_cell(tree.root(), "R_rtu");
  tree.attach_component(rtu, names::kRtu);

  const NodeId joint = tree.add_cell(tree.root(), "R_[fedr,pbcom]");
  const NodeId fedr = tree.add_cell(joint, "R_fedr");
  tree.attach_component(fedr, names::kFedr);
  const NodeId pbcom = tree.add_cell(joint, "R_pbcom");
  tree.attach_component(pbcom, names::kPbcom);
  return tree;
}

RestartTree make_tree_v() {
  RestartTree tree("R_mercury");
  const NodeId mbus = tree.add_cell(tree.root(), "R_mbus");
  tree.attach_component(mbus, names::kMbus);

  const NodeId ses_str = tree.add_cell(tree.root(), "R_[ses,str]");
  tree.attach_component(ses_str, names::kSes);
  tree.attach_component(ses_str, names::kStr);

  const NodeId rtu = tree.add_cell(tree.root(), "R_rtu");
  tree.attach_component(rtu, names::kRtu);

  // Node promotion (Fig. 6): pbcom rides the joint cell itself, so every
  // pbcom restart necessarily takes fedr with it; fedr keeps its own cheap
  // leaf. A guess-too-low pbcom-only restart is no longer expressible.
  const NodeId promoted = tree.add_cell(tree.root(), "R_pbcom+");
  tree.attach_component(promoted, names::kPbcom);
  const NodeId fedr = tree.add_cell(promoted, "R_fedr");
  tree.attach_component(fedr, names::kFedr);
  return tree;
}

RestartTree make_mercury_tree(MercuryTree tree) {
  switch (tree) {
    case MercuryTree::kTreeI: return make_tree_i();
    case MercuryTree::kTreeII: return make_tree_ii();
    case MercuryTree::kTreeIIPrime: return make_tree_ii_prime();
    case MercuryTree::kTreeIII: return make_tree_iii();
    case MercuryTree::kTreeIV: return make_tree_iv();
    case MercuryTree::kTreeV: return make_tree_v();
  }
  assert(false && "unknown tree");
  return make_tree_i();
}

std::vector<MercuryTree> published_trees() {
  return {MercuryTree::kTreeI, MercuryTree::kTreeII, MercuryTree::kTreeIII,
          MercuryTree::kTreeIV, MercuryTree::kTreeV};
}

}  // namespace mercury::core
