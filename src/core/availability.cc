#include "core/availability.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "core/mercury_trees.h"
#include "util/stats.h"

namespace mercury::core {

double group_mttf_upper_bound(const std::vector<double>& component_mttfs) {
  double bound = std::numeric_limits<double>::infinity();
  for (double mttf : component_mttfs) bound = std::min(bound, mttf);
  return bound;
}

double group_mttr_lower_bound(const std::vector<double>& component_mttrs) {
  double bound = 0.0;
  for (double mttr : component_mttrs) bound = std::max(bound, mttr);
  return bound;
}

double expected_group_mttr(const std::vector<double>& f,
                           const std::vector<double>& mttr) {
  assert(f.size() == mttr.size());
  double expected = 0.0;
  for (std::size_t i = 0; i < f.size(); ++i) expected += f[i] * mttr[i];
  return expected;
}

double availability(double mttf, double mttr) {
  assert(mttf >= 0.0 && mttr >= 0.0);
  if (mttf + mttr == 0.0) return 1.0;
  return mttf / (mttf + mttr);
}

double downtime_fraction(double mttf, double mttr) {
  return 1.0 - availability(mttf, mttr);
}

namespace {

bool contains(const std::vector<std::string>& group, const std::string& name) {
  return std::binary_search(group.begin(), group.end(), name);
}

double member_duration(const SystemModel& model, const std::string& component,
                       double contention_factor) {
  const auto it = model.restart_duration_s.find(component);
  const double base = it != model.restart_duration_s.end() ? it->second : 5.0;
  double duration = base * contention_factor;
  const auto reconnect = model.dependent_reconnect_s.find(component);
  if (reconnect != model.dependent_reconnect_s.end()) {
    duration += reconnect->second;
  }
  return duration;
}

}  // namespace

double group_restart_duration(const SystemModel& model,
                              const std::vector<std::string>& group) {
  const double factor =
      1.0 + model.contention_slope *
                std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(group.size()) - 2);
  double slowest = 0.0;
  for (const auto& component : group) {
    slowest = std::max(slowest, member_duration(model, component, factor));
  }
  return slowest;
}

namespace {

/// Time from detection until the system is functional again after
/// restarting `node`'s group, including coupling epilogues.
double recovery_after_detection(const RestartTree& tree, const SystemModel& model,
                                NodeId node) {
  const auto group = tree.group_components(node);  // sorted
  const double factor =
      1.0 + model.contention_slope *
                std::max<std::ptrdiff_t>(0, static_cast<std::ptrdiff_t>(group.size()) - 2);
  double ready = 0.0;
  for (const auto& component : group) {
    ready = std::max(ready, member_duration(model, component, factor));
  }

  for (const auto& pair : model.coupled_pairs) {
    const bool a_in = contains(group, pair.a);
    const bool b_in = contains(group, pair.b);
    if (a_in && b_in) {
      // Parallel restart: both come up, collide, renegotiate.
      const double both = std::max(member_duration(model, pair.a, factor),
                                   member_duration(model, pair.b, factor)) +
                          pair.together_epilogue_s;
      ready = std::max(ready, both);
    } else if (a_in != b_in) {
      // One side restarts and wedges the survivor: a second detect+restart
      // round follows the first restart's completion (the §4.3 tree-III
      // chain).
      const std::string& restarted = a_in ? pair.a : pair.b;
      const std::string& survivor = a_in ? pair.b : pair.a;
      const double chain = member_duration(model, restarted, factor) +
                           model.detection_latency_s +
                           member_duration(model, survivor, 1.0) +
                           pair.sequential_epilogue_s;
      ready = std::max(ready, chain);
    }
  }
  return ready;
}

}  // namespace

double predicted_recovery_time(const RestartTree& tree, const SystemModel& model,
                               const FailureClassModel& failure) {
  auto minimal = tree.lowest_cell_covering_all(failure.cure_set);
  if (!minimal) minimal = tree.root();

  const double right =
      model.detection_latency_s + recovery_after_detection(tree, model, *minimal);
  if (model.oracle_p_low <= 0.0) return right;

  // Guess-too-low (§4.4): the oracle picks the next node below the minimal
  // cell toward the manifest component's cell; that restart does not cure,
  // FD re-detects, and the minimal restart follows.
  const auto attachment = tree.lowest_cell_covering(failure.manifest);
  if (!attachment || *attachment == *minimal ||
      !tree.is_ancestor(*minimal, *attachment)) {
    return right;  // nothing lower to guess — promotion's benefit
  }
  const auto path = tree.path_to_root(*attachment);
  NodeId wrong = *attachment;
  for (std::size_t i = 0; i < path.size(); ++i) {
    if (path[i] == *minimal) {
      assert(i > 0);
      wrong = path[i - 1];
      break;
    }
  }
  const double too_low = model.detection_latency_s +
                         recovery_after_detection(tree, model, wrong) +
                         model.detection_latency_s +
                         recovery_after_detection(tree, model, *minimal);
  return (1.0 - model.oracle_p_low) * right + model.oracle_p_low * too_low;
}

double predicted_system_mttr(const RestartTree& tree, const SystemModel& model) {
  double weighted = 0.0;
  double total_rate = 0.0;
  for (const auto& failure : model.failure_classes) {
    weighted += failure.rate * predicted_recovery_time(tree, model, failure);
    total_rate += failure.rate;
  }
  return total_rate > 0.0 ? weighted / total_rate : 0.0;
}

double predicted_availability(const RestartTree& tree, const SystemModel& model) {
  // Downtime per unit time = sum over classes rate * recovery; assumes
  // non-overlapping incidents (rates are tiny relative to 1/MTTR).
  double downtime_rate = 0.0;
  for (const auto& failure : model.failure_classes) {
    downtime_rate += failure.rate * predicted_recovery_time(tree, model, failure);
  }
  return std::max(0.0, 1.0 - downtime_rate);
}

SystemModel mercury_system_model(bool split_fedrcom, double oracle_p_low,
                                 double joint_fraction) {
  namespace names = component_names;
  SystemModel model;
  model.detection_latency_s = 0.66;
  model.contention_slope = 0.0628;
  model.oracle_p_low = oracle_p_low;

  // Mirrors station::Calibration (documented derivations in DESIGN.md §4).
  model.restart_duration_s = {
      {names::kMbus, 5.35}, {names::kSes, 4.10},     {names::kStr, 4.16},
      {names::kRtu, 4.94},  {names::kFedrcom, 20.28},
      {names::kFedr, 5.11}, {names::kPbcom, 20.49},
  };
  model.coupled_pairs.push_back(CoupledPairModel{
      names::kSes, names::kStr, /*together=*/1.39, /*sequential=*/0.05});
  model.dependent_reconnect_s[names::kPbcom] = 0.10;

  // Table 1 rates, in failures per second.
  const double per_hour = 1.0 / 3600.0;
  model.failure_classes.push_back(
      {names::kSes, {names::kSes}, per_hour / 5.0});
  model.failure_classes.push_back(
      {names::kStr, {names::kStr}, per_hour / 5.0});
  model.failure_classes.push_back(
      {names::kRtu, {names::kRtu}, per_hour / 5.0});
  model.failure_classes.push_back(
      {names::kMbus, {names::kMbus}, per_hour / (30.0 * 24.0)});
  if (split_fedrcom) {
    model.failure_classes.push_back(
        {names::kFedr, {names::kFedr}, per_hour * 60.0 / 11.0});
    // pbcom fails mostly through aging (correlated with fedr restarts);
    // a `joint_fraction` of its manifestations needs the joint cure.
    const double pbcom_rate = per_hour * 60.0 / 80.0;
    model.failure_classes.push_back(
        {names::kPbcom, {names::kPbcom}, pbcom_rate * (1.0 - joint_fraction)});
    model.failure_classes.push_back(
        {names::kPbcom,
         {names::kFedr, names::kPbcom},
         pbcom_rate * joint_fraction});
  } else {
    model.failure_classes.push_back(
        {names::kFedrcom, {names::kFedrcom}, per_hour * 60.0 / 10.0});
  }
  return model;
}

// --- Client-traffic availability accounting (ISSUE 9) ----------------------

void TrafficAccount::record(RequestRecord record) {
  records_.push_back(std::move(record));
}

TrafficSummary TrafficAccount::summarize(double inject_t, double end_t,
                                         double bin_s) const {
  TrafficSummary summary;
  summary.issued = records_.size();

  util::SampleStats latency_ms;
  for (const RequestRecord& record : records_) {
    if (record.served) {
      ++summary.served;
      latency_ms.add((record.done_t - record.sent_t) * 1000.0);
    } else {
      ++summary.lost;
    }
    if (record.attempts > 1) ++summary.retried;
    summary.restarting_rejections +=
        static_cast<std::uint64_t>(std::max(0, record.restarting_nacks));
    if (record.detail == "rejected-parked") ++summary.parked_rejections;
  }
  if (!latency_ms.empty()) {
    summary.p50_ms = latency_ms.percentile(50.0);
    summary.p99_ms = latency_ms.percentile(99.0);
    summary.p999_ms = latency_ms.percentile(99.9);
  }

  if (inject_t <= 0.0 || bin_s <= 0.0 || end_t <= inject_t) return summary;

  // Baseline: served rate over the whole pre-injection window.
  std::uint64_t served_before = 0;
  std::map<std::int64_t, std::uint64_t> served_by_bin;
  for (const RequestRecord& record : records_) {
    if (!record.served) continue;
    if (record.done_t < inject_t) ++served_before;
    served_by_bin[static_cast<std::int64_t>(record.done_t / bin_s)] += 1;
  }
  summary.baseline_rps = static_cast<double>(served_before) / inject_t;
  if (summary.baseline_rps <= 0.0) return summary;

  // Goodput dip over bins fully contained in (inject_t, end_t): the first
  // (injection-straddling) and last (quiesce-straddling) partial bins would
  // read as artificial dips.
  const auto first_bin = static_cast<std::int64_t>(inject_t / bin_s) + 1;
  const auto end_bin = static_cast<std::int64_t>(end_t / bin_s);  // exclusive
  const double threshold = 0.95 * summary.baseline_rps;
  double min_rate = summary.baseline_rps;
  std::int64_t last_below = -1;
  for (std::int64_t bin = first_bin; bin < end_bin; ++bin) {
    const auto it = served_by_bin.find(bin);
    const double rate =
        (it == served_by_bin.end() ? 0.0 : static_cast<double>(it->second)) /
        bin_s;
    min_rate = std::min(min_rate, rate);
    if (rate < threshold) {
      summary.dip_width_s += bin_s;
      last_below = bin;
    }
  }
  summary.dip_depth =
      std::clamp(1.0 - min_rate / summary.baseline_rps, 0.0, 1.0);
  if (last_below >= 0) {
    summary.dip_end_s = static_cast<double>(last_below + 1) * bin_s - inject_t;
  }

  // Service-reopen latency per impacted route: max over routes that lost a
  // post-injection request of (first post-injection serve - inject).
  std::map<std::string, double> first_served_after;
  std::map<std::string, bool> impacted;
  for (const RequestRecord& record : records_) {
    if (record.served && record.done_t >= inject_t) {
      const auto it = first_served_after.find(record.target);
      if (it == first_served_after.end() || record.done_t < it->second) {
        first_served_after[record.target] = record.done_t;
      }
    }
    if (!record.served && record.sent_t >= inject_t) {
      impacted[record.target] = true;
    }
  }
  for (const auto& [route, was_impacted] : impacted) {
    if (!was_impacted) continue;
    const auto it = first_served_after.find(route);
    const double reopen = (it == first_served_after.end() ? end_t : it->second) -
                          inject_t;
    summary.worst_route_reopen_s =
        std::max(summary.worst_route_reopen_s, reopen);
  }
  return summary;
}

}  // namespace mercury::core
