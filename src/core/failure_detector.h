// FD — the failure detector (paper §2.2).
//
// "FD continuously performs liveness pings on Mercury components, with a
// period of 1 second... When FD detects a failure, it tells REC which
// component(s) appear to have failed, and continues its failure detection."
//
// Mechanics:
//   * one staggered ping loop per monitored component, over mbus;
//   * a ping unanswered within `timeout` raises suspicion;
//   * because a dead mbus silences *everyone*, a non-mbus timeout first
//     verifies mbus with an immediate probe: if the probe also times out,
//     FD attributes the silence to mbus and reports only mbus (the bus is
//     "monitored as well");
//   * REC masks the components it is currently restarting ("mask"/"unmask"
//     commands over the dedicated link), so in-flight restarts are not
//     re-reported; a persisting failure is re-detected by the first ping
//     after the unmask, which is what drives escalation;
//   * FD answers REC's liveness pings over the link and can itself be
//     crashed/restarted (the §2.2 mutual-recovery special cases).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bus/dedicated_link.h"
#include "bus/message_bus.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace mercury::core {

using util::Duration;

struct FdConfig {
  Duration ping_period = Duration::seconds(1.0);
  Duration ping_timeout = Duration::millis(150.0);
  /// Timeout of the mbus verification probe.
  Duration mbus_verify_timeout = Duration::millis(150.0);
  /// Minimum spacing between repeated reports of the same component.
  Duration report_cooldown = Duration::millis(900.0);
  /// Consecutive missed pings before a component is reported. The paper's
  /// FD reports on the first miss (1) — sound over a lossless TCP bus, but
  /// every lost message becomes a spurious restart; 2-3 trades ~one extra
  /// ping period of detection latency for loss tolerance (see the
  /// detection-robustness ablation).
  int misses_before_report = 1;
  std::string mbus_name = "mbus";
  /// FD's endpoint name on mbus and on the dedicated link.
  std::string fd_name = "fd";
  std::string rec_name = "rec";
};

class FailureDetector {
 public:
  FailureDetector(sim::Simulator& sim, bus::MessageBus& bus,
                  bus::DedicatedLink& link, std::vector<std::string> targets,
                  FdConfig config);
  ~FailureDetector();

  FailureDetector(const FailureDetector&) = delete;
  FailureDetector& operator=(const FailureDetector&) = delete;

  /// Attach to the bus/link and begin the staggered ping loops.
  void start();

  /// Re-attach the bus endpoint (after an mbus restart).
  void reattach();

  // --- FD as a process (mutual-recovery scenarios) -----------------------
  bool alive() const { return alive_; }
  /// Fail-silent crash: loops keep firing but do nothing.
  void crash();
  /// Restart finished: resume with clean per-target state.
  void restart_complete();

  /// Hook invoked when FD decides REC is dead (FD "initiates REC's
  /// recovery" — the procedural knowledge is a single hardwired action).
  void set_rec_restarter(std::function<void()> restarter);
  /// Enable FD's liveness monitoring of REC over the link.
  void monitor_rec();

  // --- Introspection ------------------------------------------------------
  std::uint64_t pings_sent() const { return pings_sent_; }
  std::uint64_t pongs_received() const { return pongs_received_; }
  std::uint64_t failures_reported() const { return failures_reported_; }
  bool is_masked(const std::string& target) const;

 private:
  struct TargetState {
    std::string name;
    std::unique_ptr<sim::PeriodicTask> loop;
    std::uint64_t outstanding_seq = 0;  // 0 = none
    sim::EventId timeout_event;
    int consecutive_misses = 0;
    util::TimePoint last_report = util::TimePoint::origin() -
                                  util::Duration::hours(1.0);
    bool reported_since_mask = false;
  };

  void ping(TargetState& target);
  void on_ping_timeout(TargetState& target);
  void on_bus_message(const msg::Message& message);
  void on_link_message(const msg::Message& message);
  void report(const std::string& component);
  void begin_mbus_verification(const std::string& pending);
  void finish_mbus_verification(bool mbus_alive);
  void apply_mask(const std::vector<std::string>& components, bool masked);
  void ping_rec();
  void on_rec_timeout();

  sim::Simulator& sim_;
  bus::MessageBus& bus_;
  bus::DedicatedLink& link_;
  FdConfig config_;
  bool alive_ = true;
  std::uint64_t seq_ = 1;
  std::map<std::string, TargetState> targets_;
  std::set<std::string> masked_;

  // mbus verification state.
  bool verifying_mbus_ = false;
  std::uint64_t verify_seq_ = 0;
  std::uint64_t verify_span_ = 0;  // open obs span for the verification
  sim::EventId verify_timeout_;
  std::vector<std::string> pending_reports_;

  // REC monitoring.
  std::function<void()> rec_restarter_;
  std::unique_ptr<sim::PeriodicTask> rec_loop_;
  std::uint64_t rec_outstanding_seq_ = 0;
  sim::EventId rec_timeout_;
  bool rec_restart_in_flight_ = false;

  std::uint64_t pings_sent_ = 0;
  std::uint64_t pongs_received_ = 0;
  std::uint64_t failures_reported_ = 0;
};

}  // namespace mercury::core
