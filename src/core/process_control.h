// ProcessControl: the recoverer's handle on the system's processes.
//
// In the paper, REC "restarts the chosen modules" by killing and re-exec'ing
// their JVM processes. This interface abstracts that: the simulated station
// implements it against the event kernel, and the POSIX backend implements
// it with fork/exec/SIGKILL on real child processes. The recoverer (core) is
// identical over both.
#pragma once

#include <functional>
#include <string>
#include <vector>

namespace mercury::core {

class ProcessControl {
 public:
  virtual ~ProcessControl() = default;

  /// All managed component names.
  virtual std::vector<std::string> component_names() const = 0;

  /// Kill and restart the named components concurrently, as one restart
  /// group. `on_complete` fires once every component in the group has
  /// finished starting up (whole-system restarts experience contention —
  /// a property of the implementation, not of this interface).
  ///
  /// A group naming a component whose previous restart is still in flight
  /// (possibly hung or crash-looping — the restart path is itself a fault
  /// domain) SUPERSEDES the stale attempt: the component is re-killed and
  /// started fresh under the new group. The abandoned group's on_complete
  /// still fires when its remaining members drain, so callers MUST guard
  /// completions (the recoverer tags each action with an id and ignores
  /// stale ones). `on_complete` is not guaranteed to fire at all for an
  /// attempt that hangs; a hardened caller needs its own deadline.
  virtual void restart_group(const std::vector<std::string>& names,
                             std::function<void()> on_complete) = 0;

  /// True while any restart group is still in flight.
  virtual bool restart_in_progress() const = 0;

  /// Components currently being restarted (subset of component_names()).
  virtual std::vector<std::string> restarting_now() const = 0;

  // --- Recursive recovery (§7) --------------------------------------------
  // "With recursive recovery, we can accommodate a wider range of recovery
  // semantics, since each component is recovered using a custom procedure;
  // restart is just one example of a recovery procedure."

  // --- Checkpointed warm restarts (ISSUE 3; tiered, ISSUE 7) --------------
  /// Shed the fault-suspected soft-state checkpoints for `names`. The
  /// recoverer calls this when a restart action blows its deadline: state
  /// the failed attempt may have warm-started from is fault-suspected, and
  /// bad state is exactly what a restart is meant to shed.
  ///
  /// The shed is TIER-AWARE for implementations with replicated checkpoint
  /// storage: only the component's *local* (L0) snapshot — the copy that
  /// could have fed the failed attempt — is condemned. Replicas held
  /// elsewhere (a partner's in-memory copy, stable storage) are kept, and
  /// the superseding attempt still consults them before conceding a cold
  /// start. Single-tier implementations degenerate to "discard everything".
  /// Default: no checkpointing, nothing to discard.
  virtual void discard_checkpoints(const std::vector<std::string>& names) {
    (void)names;
  }

  /// The recoverer parked `names` as hard failures: they stay down (and
  /// permanently masked) until an operator intervenes. Implementations with
  /// replicated checkpoint storage reassign the replicas those components
  /// hosted — a parked host is as gone as a killed one, but without this
  /// hook its hosted copies would silently rot. Default: nothing to do.
  virtual void note_parked(const std::vector<std::string>& names) {
    (void)names;
  }

  /// Whether components offer a soft recovery procedure (cheaper than a
  /// restart; cures only soft-curable failures). Default: restart-only.
  virtual bool supports_soft_recovery() const { return false; }

  /// Run `component`'s soft recovery procedure; `on_complete` fires when it
  /// finishes. Only call when supports_soft_recovery() is true.
  virtual void soft_recover(const std::string& component,
                            std::function<void()> on_complete) {
    (void)component;
    if (on_complete) on_complete();
  }
};

}  // namespace mercury::core
