#include "core/timeline.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/strings.h"

namespace mercury::core {

std::string_view to_string(TimelineEventKind kind) {
  switch (kind) {
    case TimelineEventKind::kFailureInjected: return "FAIL";
    case TimelineEventKind::kFailureCured: return "CURE";
    case TimelineEventKind::kRestartBegun: return "RESTART";
    case TimelineEventKind::kRestartCompleted: return "DONE";
    case TimelineEventKind::kSoftRecovery: return "SOFT";
    case TimelineEventKind::kPlannedRestart: return "PLANNED";
  }
  return "?";
}

void RecoveryTimeline::observe(FailureBoard& board) {
  board.add_inject_listener([this](const ActiveFailure& failure) {
    record(TimelineEvent{failure.onset, TimelineEventKind::kFailureInjected,
                         failure.spec.manifest,
                         failure.spec.kind + ", cure {" +
                             util::join(failure.spec.cure_set, ",") + "}"});
  });
  board.add_cure_listener(
      [this](const ActiveFailure& failure, util::TimePoint now) {
        record(TimelineEvent{
            now, TimelineEventKind::kFailureCured, failure.spec.manifest,
            "after " + (now - failure.onset).str()});
      });
}

void RecoveryTimeline::ingest(const Recoverer& rec, const RestartTree& tree) {
  const auto& history = rec.history();
  for (std::size_t i = ingested_records_; i < history.size(); ++i) {
    const RecoveryRecord& record_entry = history[i];
    const std::string cell = tree.cell(record_entry.node).label;
    TimelineEventKind begin_kind = TimelineEventKind::kRestartBegun;
    if (record_entry.soft) begin_kind = TimelineEventKind::kSoftRecovery;
    if (record_entry.planned) begin_kind = TimelineEventKind::kPlannedRestart;
    record(TimelineEvent{
        record_entry.report_time, begin_kind, cell,
        "for " + record_entry.reported_component +
            (record_entry.escalation_level > 0
                 ? " [escalation " + std::to_string(record_entry.escalation_level) + "]"
                 : "")});
    record(TimelineEvent{record_entry.complete_time,
                         TimelineEventKind::kRestartCompleted, cell,
                         "{" + util::join(record_entry.restarted, ",") + "} in " +
                             (record_entry.complete_time - record_entry.report_time)
                                 .str()});
  }
  ingested_records_ = history.size();
}

void RecoveryTimeline::record(TimelineEvent event) {
  events_.push_back(std::move(event));
}

std::vector<TimelineEvent> RecoveryTimeline::events() const {
  std::vector<TimelineEvent> sorted = events_;
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TimelineEvent& a, const TimelineEvent& b) {
                     return a.at < b.at;
                   });
  return sorted;
}

void RecoveryTimeline::clear() {
  events_.clear();
  ingested_records_ = 0;
}

std::string RecoveryTimeline::render_listing() const {
  std::ostringstream os;
  const auto sorted = events();
  util::TimePoint previous;
  bool first = true;
  for (const auto& event : sorted) {
    os << "[" << util::pad_left(util::format_fixed(event.at.to_seconds(), 3), 10)
       << "s]";
    if (first) {
      os << "          ";
      first = false;
    } else {
      os << " (+" << util::pad_left(
                         util::format_fixed((event.at - previous).to_seconds(), 3),
                         7)
         << ")";
    }
    previous = event.at;
    os << " " << util::pad_right(std::string{to_string(event.kind)}, 8) << " "
       << util::pad_right(event.subject, 16) << " " << event.detail << "\n";
  }
  return os.str();
}

std::string RecoveryTimeline::render_gantt(util::TimePoint from,
                                           util::TimePoint to,
                                           std::size_t width) const {
  // Reconstruct per-component down intervals from FAIL/CURE pairs.
  struct Interval {
    util::TimePoint begin;
    util::TimePoint end;
  };
  std::map<std::string, std::vector<Interval>> down;
  std::map<std::string, std::vector<util::TimePoint>> open;
  for (const auto& event : events()) {
    if (event.kind == TimelineEventKind::kFailureInjected) {
      open[event.subject].push_back(event.at);
    } else if (event.kind == TimelineEventKind::kFailureCured) {
      auto& opens = open[event.subject];
      if (!opens.empty()) {
        down[event.subject].push_back(Interval{opens.front(), event.at});
        opens.erase(opens.begin());
      }
    }
  }
  // Failures never cured run to the horizon.
  for (auto& [component, opens] : open) {
    for (const auto& begin : opens) {
      down[component].push_back(Interval{begin, to});
    }
  }

  std::ostringstream os;
  const double t0 = from.to_seconds();
  const double t1 = to.to_seconds();
  if (t1 <= t0) return "";
  for (const auto& [component, intervals] : down) {
    std::string strip(width, '-');
    for (const auto& interval : intervals) {
      const double begin = std::max(interval.begin.to_seconds(), t0);
      const double end = std::min(interval.end.to_seconds(), t1);
      if (end <= begin) continue;
      auto begin_col = static_cast<std::size_t>((begin - t0) / (t1 - t0) *
                                                static_cast<double>(width));
      auto end_col = static_cast<std::size_t>((end - t0) / (t1 - t0) *
                                              static_cast<double>(width));
      begin_col = std::min(begin_col, width - 1);
      end_col = std::min(std::max(end_col, begin_col + 1), width);
      for (std::size_t col = begin_col; col < end_col; ++col) strip[col] = '#';
    }
    os << util::pad_right(component, 10) << " |" << strip << "|\n";
  }
  os << util::pad_right("", 10) << "  " << util::format_fixed(t0, 1) << "s"
     << std::string(width > 16 ? width - 14 : 1, ' ') << util::format_fixed(t1, 1)
     << "s\n";
  return os.str();
}

}  // namespace mercury::core
