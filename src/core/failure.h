// Failure model: what a failure is, where it manifests, what cures it.
//
// The paper reasons about failures via f_ci — "the probability that a
// manifested failure in [a group] is minimally c_i-curable" (§4.1). We make
// that explicit: every failure has a *manifest* component (the one that
// stops answering liveness pings) and a *cure set* (the minimal set of
// components whose restart, after the failure's onset, cures it). Examples
// from Mercury:
//
//   crash of ses            -> manifest ses,   cure {ses}
//   fedr/pbcom joint bug    -> manifest pbcom, cure {fedr, pbcom}   (§4.4)
//   str wedged by ses resync-> manifest str,   cure {str}           (§4.3,
//                              induced by the curing action itself)
//
// A_cure (§4): every failure here is restart-curable by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace mercury::core {

using FailureId = std::uint64_t;

struct FailureSpec {
  /// Component that appears fail-silent (stops answering pings).
  std::string manifest;
  /// Minimal set of components whose post-onset restart cures the failure.
  /// Always contains at least `manifest`.
  std::vector<std::string> cure_set;
  /// Curable by the component's *soft* recovery procedure too (§7's
  /// recursive recovery: "each component is recovered using a custom
  /// procedure; restart is just one example"). E.g. a stale bus attachment
  /// needs only a reconnect. A restart still cures it — restart is the
  /// stronger rung of the ladder.
  bool soft_curable = false;
  /// Free-form tag for logs/telemetry ("crash", "joint", "induced-resync").
  std::string kind = "crash";
};

FailureSpec make_crash(std::string component);
FailureSpec make_joint(std::string manifest, std::vector<std::string> cure_set);
/// A soft-curable transient: the component's process is healthy but its
/// session/attachment state is stale (cure: soft recovery or restart).
FailureSpec make_stale_attachment(std::string component);

struct ActiveFailure {
  FailureId id = 0;
  FailureSpec spec;
  util::TimePoint onset;
  /// Cure-set members that have completed a restart since onset.
  std::vector<std::string> restarted;

  bool cured() const { return restarted.size() == spec.cure_set.size(); }
};

/// Restart-time fault model: the cure itself is a fault domain. A restart
/// attempt of a component can hang (startup never completes), crash during
/// startup (the attempt ends with the component still down), or flake (a
/// per-attempt crash probability). Deterministic first-k variants let tests
/// and the chaos campaign script exact crash-loop shapes. Probabilities and
/// counters are *per restart attempt of that component*; attempt counters
/// reset on the first successful startup.
struct RestartFaultSpec {
  /// Probability a restart attempt hangs: startup never completes and only a
  /// superseding restart (recoverer deadline -> escalate) can move on.
  double hang_prob = 0.0;
  /// Probability a restart attempt crashes at the end of its startup.
  double crash_prob = 0.0;
  /// The first k attempts hang deterministically (then hang_prob applies).
  int hang_first_attempts = 0;
  /// The first k attempts crash deterministically (crash-loop shape).
  int fail_first_attempts = 0;

  bool active() const {
    return hang_prob > 0.0 || crash_prob > 0.0 || hang_first_attempts > 0 ||
           fail_first_attempts > 0;
  }
};

}  // namespace mercury::core
