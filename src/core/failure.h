// Failure model: what a failure is, where it manifests, what cures it.
//
// The paper reasons about failures via f_ci — "the probability that a
// manifested failure in [a group] is minimally c_i-curable" (§4.1). We make
// that explicit: every failure has a *manifest* component (the one that
// stops answering liveness pings) and a *cure set* (the minimal set of
// components whose restart, after the failure's onset, cures it). Examples
// from Mercury:
//
//   crash of ses            -> manifest ses,   cure {ses}
//   fedr/pbcom joint bug    -> manifest pbcom, cure {fedr, pbcom}   (§4.4)
//   str wedged by ses resync-> manifest str,   cure {str}           (§4.3,
//                              induced by the curing action itself)
//
// A_cure (§4): every failure here is restart-curable by construction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace mercury::core {

using FailureId = std::uint64_t;

struct FailureSpec {
  /// Component that appears fail-silent (stops answering pings).
  std::string manifest;
  /// Minimal set of components whose post-onset restart cures the failure.
  /// Always contains at least `manifest`.
  std::vector<std::string> cure_set;
  /// Curable by the component's *soft* recovery procedure too (§7's
  /// recursive recovery: "each component is recovered using a custom
  /// procedure; restart is just one example"). E.g. a stale bus attachment
  /// needs only a reconnect. A restart still cures it — restart is the
  /// stronger rung of the ladder.
  bool soft_curable = false;
  /// Free-form tag for logs/telemetry ("crash", "joint", "induced-resync").
  std::string kind = "crash";
};

FailureSpec make_crash(std::string component);
FailureSpec make_joint(std::string manifest, std::vector<std::string> cure_set);
/// A soft-curable transient: the component's process is healthy but its
/// session/attachment state is stale (cure: soft recovery or restart).
FailureSpec make_stale_attachment(std::string component);

struct ActiveFailure {
  FailureId id = 0;
  FailureSpec spec;
  util::TimePoint onset;
  /// Cure-set members that have completed a restart since onset.
  std::vector<std::string> restarted;

  bool cured() const { return restarted.size() == spec.cure_set.size(); }
};

}  // namespace mercury::core
