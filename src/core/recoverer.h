// REC — the recoverer (paper §2.2, §3.3).
//
// "REC uses a restart tree data structure and a simple policy to choose
// which module(s) to restart upon being notified of a failure. The policy
// also keeps track of past restarts to prevent infinite restarts of 'hard'
// failures."
//
// On a failure report from FD (over the dedicated link) REC:
//   1. consults the oracle for a cell of the restart tree — or, if the same
//      component failed again right after a restart that covered it,
//      escalates to the parent cell (§3.3);
//   2. masks the cell's restart group in FD, restarts the group through
//      ProcessControl, and unmasks on completion;
//   3. schedules recovery actions under the configured DispatchMode:
//      *serial* (legacy) runs one action at a time and queues everything
//      else; *dag* dispatches a report immediately when its cell is
//      disjoint from every in-flight action's cell (the restart tree's
//      nested-or-disjoint group property makes sibling subtrees safe to
//      overlap) and queues FIFO behind a conflict; *on-demand* additionally
//      scans the queue out of order so any entry whose conflict has cleared
//      dispatches. In every mode ancestor/descendant cells never restart
//      concurrently: an escalation whose chosen cell contains an in-flight
//      action's cell absorbs that action (the wider restart supersedes it);
//   4. gives up on a chain that keeps failing after `max_root_restarts`
//      full-system restarts, parking it as a hard failure for the operator.
//
// The restart path is itself a fault domain (ISSUE 2), so REC is hardened
// against its own cure failing:
//
//   * a per-restart deadline (sized by the harness from the calibration's
//     worst-case contended startup plus margin) aborts a hung restart —
//     ProcessControl implementations supersede the stale attempt on the next
//     restart_group — and escalates it like a persisting failure;
//   * exponential backoff (base/factor/cap, with gradual decay) paces
//     successive restart attempts of the same cell, so a crash-looping
//     startup cannot become a restart storm; the interval is clamped to
//     [base, cap] on every path, decay included;
//   * an attempt budget per failure chain feeds the existing hard-failure
//     parking, and parked components are masked in FD *permanently*, so the
//     station keeps operating degraded instead of detect/restart-looping.
//
// All hardening knobs apply *per in-flight action*: each action carries its
// own deadline event, chain attempt count, and chain attribution, keyed by
// action id, so concurrent chains park, back off, and escalate
// independently. Queued reports are keyed by (component, failure epoch) —
// the epoch counts completed restarts covering the component — so a report
// queued after a covering restart completed is never dropped against that
// stale completion. Completions are guarded by the action id so a hung
// restart that finishes late, or a superseded group draining, can never be
// mistaken for a live action.
//
// REC also answers FD's pings and monitors FD in return (§2.2's two special
// cases); the FD restart action is injected by the harness.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bus/dedicated_link.h"
#include "core/oracle.h"
#include "core/process_control.h"
#include "core/restart_tree.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace mercury::core {

/// How REC schedules non-interfering recovery actions.
enum class DispatchMode {
  /// One action at a time; every other report queues (legacy behavior).
  kSerial,
  /// Disjoint cells dispatch immediately; a conflicting report queues FIFO
  /// and blocks the queue head (DAG partial order over the restart tree).
  kDag,
  /// Like kDag, but the queue is scanned out of order at every drain: any
  /// entry whose conflict has cleared dispatches, regardless of position.
  kOnDemand,
};

const char* to_string(DispatchMode mode);

struct RecConfig {
  /// A report for a component covered by the previous restart, arriving
  /// within this window of the restart's completion, is treated as "the
  /// failure still manifests" and escalates (§3.3). Sized just above the
  /// worst-case re-detection latency (ping period + timeout + link), so an
  /// unrelated fresh failure rarely masquerades as a persisting one.
  util::Duration escalation_window = util::Duration::seconds(2.5);
  /// Recursive recovery (§7): try the failed component's *soft* recovery
  /// procedure before any restart. Cheap when the failure is soft-curable
  /// (a reconnect beats a 20 s restart); costs one soft-procedure-plus-
  /// redetect round when it is not. Requires ProcessControl support.
  bool enable_soft_recovery = false;
  /// Full-system restarts tolerated per recurring component failure before
  /// declaring a hard failure.
  int max_root_restarts = 2;
  /// How long uncured-root-restart counts accumulate per component; a
  /// component whose failures outlive this many root restarts inside the
  /// window is parked.
  util::Duration root_retry_window = util::Duration::seconds(90.0);
  util::Duration fd_ping_period = util::Duration::seconds(1.0);
  util::Duration fd_ping_timeout = util::Duration::millis(300.0);
  std::string fd_name = "fd";
  std::string rec_name = "rec";

  /// Restart-DAG scheduling of non-interfering cells. kSerial reproduces
  /// the paper's one-chain-at-a-time recoverer exactly; the DAG modes
  /// overlap sibling subtrees while keeping ancestor/descendant pairs
  /// strictly ordered (absorb-on-escalation).
  DispatchMode dispatch = DispatchMode::kSerial;

  // --- Restart-path hardening (ISSUE 2) -----------------------------------
  /// Deadline for one restart action (kill -> every group member ready). A
  /// restart still in flight when it expires is abandoned and escalated like
  /// a persisting failure; the superseding restart re-kills the stragglers.
  /// Size it above the worst-case contended startup (the experiment rig uses
  /// the calibration's slowest component x full contention x margin). Zero
  /// disables: legacy behavior, trust on_complete unconditionally.
  util::Duration restart_deadline = util::Duration::zero();
  /// Exponential backoff between successive restart attempts of the same
  /// cell: attempt n of a streak starts no earlier than backoff_base *
  /// backoff_factor^(n-1) after attempt n-1 began, clamped to
  /// [backoff_base, backoff_cap]. Zero base disables.
  util::Duration backoff_base = util::Duration::zero();
  double backoff_factor = 2.0;
  util::Duration backoff_cap = util::Duration::seconds(30.0);
  /// Streak decay: each full quiet backoff_decay forgets one streak step, so
  /// a long-idle cell climbs back down gradually instead of keeping its worst
  /// interval forever.
  util::Duration backoff_decay = util::Duration::seconds(60.0);
  /// Restart attempts tolerated per failure chain (reactive actions only,
  /// timed-out attempts included) before the chain is parked as a hard
  /// failure. Zero disables (only max_root_restarts parks).
  int max_attempts_per_chain = 0;

  // --- Traffic-driven on-demand recovery (ISSUE 9) ------------------------
  /// Only meaningful under DispatchMode::kOnDemand. The first report (the
  /// minimal phase restoring the serving core) dispatches immediately;
  /// every report arriving while any action is in flight queues lazily —
  /// even when its cell is disjoint — so service reopens before the full
  /// tree is back. Queued cells restart when a client request first touches
  /// them (touch() promotes the entry to the DAG front and dispatches it as
  /// soon as no in-flight conflict remains); untouched cells drain in the
  /// background, one per lazy_drain_interval.
  bool traffic_driven = false;
  util::Duration lazy_drain_interval = util::Duration::millis(500.0);
};

/// What Recoverer::touch found for the touched component.
enum class TouchResult {
  kIdle,        ///< nothing queued or in flight for this component
  kRestarting,  ///< an in-flight action already covers it
  kPromoted,    ///< a queued entry was promoted (dispatched, or moved to the
                ///< queue front when an in-flight conflict still blocks it)
  kParked,      ///< hard-failed: requests get a clean rejection, no restart
};

/// One completed recovery action, for logs and experiment audits.
struct RecoveryRecord {
  std::string reported_component;
  NodeId node = kInvalidNode;
  std::vector<std::string> restarted;
  int escalation_level = 0;
  /// Proactive rejuvenation (health monitor) rather than reactive recovery.
  bool planned = false;
  /// Soft recovery procedure (§7 recursive recovery) rather than a restart.
  bool soft = false;
  util::TimePoint report_time;
  util::TimePoint complete_time;
};

class Recoverer {
 public:
  Recoverer(sim::Simulator& sim, bus::DedicatedLink& link, RestartTree tree,
            Oracle& oracle, ProcessControl& process_control, RecConfig config);
  ~Recoverer();

  Recoverer(const Recoverer&) = delete;
  Recoverer& operator=(const Recoverer&) = delete;

  /// Bind the link endpoint and begin answering/monitoring FD.
  void start();

  /// Proactive (planned) restart of the component's own cell — the §7
  /// rejuvenation path, driven by the health monitor. Declined (returns
  /// false) while reactive recovery that could interfere is in flight (any
  /// action at all under kSerial; a conflicting one under the DAG modes);
  /// accepted restarts flow through the same mask/restart/unmask machinery
  /// and count toward the escalation context like any other restart.
  bool planned_restart(const std::string& component);

  /// Traffic-driven on-demand recovery (ISSUE 9): a client request just
  /// touched `component`. If a queued restart is waiting for it, the entry
  /// is promoted — dispatched immediately when no in-flight conflict
  /// remains, else moved to the queue front so it dispatches at the next
  /// drain. No-op (kIdle) outside traffic-driven on-demand mode.
  TouchResult touch(const std::string& component);

  const RestartTree& tree() const { return tree_; }

  // --- REC as a process ---------------------------------------------------
  bool alive() const { return alive_; }
  void crash();
  void restart_complete();

  /// Hook invoked when REC decides FD is dead ("we wrote REC to issue
  /// liveness pings to FD and detect its failure, after which it can
  /// initiate FD recovery").
  void set_fd_restarter(std::function<void()> restarter);
  void monitor_fd();

  // --- Introspection ------------------------------------------------------
  const std::vector<RecoveryRecord>& history() const { return history_; }
  std::uint64_t restarts_executed() const { return history_.size(); }
  std::uint64_t escalations() const { return escalations_; }
  std::uint64_t planned_restarts() const { return planned_restarts_; }
  std::uint64_t soft_recoveries() const { return soft_recoveries_; }
  bool restart_in_progress() const { return !actions_.empty(); }
  /// Recovery actions currently in flight (dispatched or backoff-pending).
  std::size_t restarts_in_flight() const { return actions_.size(); }
  /// High-water mark of concurrent in-flight actions (1 under kSerial).
  std::size_t max_concurrent_restarts() const { return max_concurrent_; }
  /// In-flight actions superseded by an escalation to a containing cell.
  std::uint64_t absorbed_restarts() const { return absorbed_actions_; }
  /// Chains declared unrecoverable-by-restart.
  const std::vector<std::string>& hard_failures() const { return hard_failures_; }
  /// Components permanently masked in FD by hard-failure parking: the
  /// station operates degraded without them until an operator intervenes.
  const std::set<std::string>& parked() const { return parked_; }
  /// Restart actions abandoned by the per-restart deadline.
  std::uint64_t restart_timeouts() const { return restart_timeouts_; }
  /// Restart attempts delayed by the same-cell backoff policy.
  std::uint64_t backoffs_applied() const { return backoffs_applied_; }
  /// Queued restarts promoted by a client-request touch (traffic-driven).
  std::uint64_t touch_promotions() const { return touch_promotions_; }
  /// Queued restarts dispatched by the background lazy drain.
  std::uint64_t lazy_drains() const { return lazy_drains_; }

 private:
  /// One in-flight recovery action. Deadline, backoff streak, attempt
  /// budget, and chain attribution all live here (keyed by action_id), so
  /// concurrent actions harden independently.
  struct Action {
    std::string reported_component;
    NodeId node = kInvalidNode;
    std::vector<std::string> components;  // sorted restart group
    int escalation_level = 0;
    bool planned = false;
    bool soft = false;
    util::TimePoint report_time;
    std::uint64_t trace_span = 0;  // open obs span once dispatched
    std::uint64_t action_id = 0;   // stale-completion guard
    sim::EventId deadline_event;   // pending restart_deadline, if any
    bool dispatched = false;       // false while waiting out a backoff delay
    /// Component that opened this failure chain (oracle feedback subject).
    std::string chain_component;
    /// Reactive attempts the chain has consumed, this action included.
    int chain_attempts = 0;
    /// Every component a timed-out attempt of this chain left restarting;
    /// parking the chain sweeps exactly these stragglers, never another
    /// chain's live restart.
    std::set<std::string> chain_touched;
  };
  /// A recently completed action, kept for the escalation window: the §3.3
  /// "failure still manifests" check, negative/positive oracle feedback, and
  /// chain inheritance all key off these. kSerial keeps exactly one (the
  /// legacy `last restart`); the DAG modes keep one per concurrent chain and
  /// prune records once the window passes and feedback is settled.
  struct CompletionRecord {
    std::uint64_t id = 0;  // completing action's id (unique)
    NodeId node = kInvalidNode;
    std::vector<std::string> components;
    int escalation_level = 0;
    bool soft = false;
    util::TimePoint complete_time;
    std::string chain_component;
    int chain_attempts = 0;
    bool feedback_sent = false;
  };
  /// A deferred failure report. The epoch pins which completed-restart
  /// generation the report belongs to, so drain drops it only against a
  /// restart that completed *after* it was queued.
  struct QueuedReport {
    std::string component;
    std::uint64_t epoch = 0;
    /// Traffic-driven mode: a client request touched this component while it
    /// waited — it dispatches at the next drain instead of waiting for the
    /// background lazy drain.
    bool touched = false;
  };
  /// Per-component record of recent root-level restarts triggered by that
  /// component's failures, for the hard-failure give-up. Keyed by the
  /// *reported* component so an unrelated crash landing right after a full
  /// reboot cannot get an innocent component parked.
  struct RootRestartHistory {
    int count = 0;
    util::TimePoint last = util::TimePoint::origin() - util::Duration::hours(1.0);
  };
  /// Same-cell restart pacing (crash loops must not become restart storms).
  struct CellBackoff {
    int streak = 0;
    util::TimePoint last = util::TimePoint::origin() - util::Duration::hours(1.0);
  };

  void on_link_message(const msg::Message& message);
  void handle_report(const std::string& component);
  /// The decision tail of handle_report (escalation context, oracle choose,
  /// execute) — the part that commits to acting on the report. Promotion
  /// paths (touch, lazy drain) call this directly so a promoted entry cannot
  /// re-enter the traffic-driven lazy queue.
  void dispatch_report(const std::string& component);
  /// Lazy queueing is active: on-demand dispatch with traffic_driven set.
  bool traffic_active() const;
  /// Arm the background drain timer (one untouched entry per interval).
  void schedule_lazy_drain();
  void lazy_drain_tick();
  void execute(Action restart);
  void execute_soft(Action restart);
  /// Open the trace span, mask the group, start the deadline and hand the
  /// group to ProcessControl (execute() after any backoff delay). The action
  /// must already be in actions_; a missing id means it was absorbed.
  void dispatch(std::uint64_t action_id);
  void on_restart_complete(std::uint64_t action_id);
  void on_restart_timeout(std::uint64_t action_id);
  /// True when the chain's attempt budget is exhausted; parks and returns
  /// true, or returns false to keep going.
  bool budget_exhausted_then_park(const Action& restart);
  /// Root-level give-up accounting shared by the persisting-failure and
  /// restart-timeout escalation paths; returns true when it parked.
  bool note_root_restart_then_maybe_park(const std::string& component,
                                         const std::set<std::string>* chain_touched);
  /// Declare `component`'s chain a hard failure. Permanently masks it in FD,
  /// along with any straggler the chain's abandoned restarts left in flight
  /// (chain_touched ∩ restarting_now — never another chain's live restart).
  /// Healthy components left masked by abandoned actions are unmasked — they
  /// return to service.
  void park(const std::string& component, const std::string& reason,
            const std::set<std::string>* chain_touched);
  bool is_parked(const std::string& component) const;
  /// True when any in-flight action's group already covers the component.
  bool component_in_flight(const std::string& component) const;
  /// True when restarting `cell` would overlap an in-flight action's cell
  /// (ancestor/descendant — the unsafe overlap the DAG must serialize).
  bool conflicts_with_in_flight(NodeId cell) const;
  /// Supersede-and-absorb every in-flight action whose cell the absorber's
  /// chosen cell contains (escalation ordering: the wider restart re-kills
  /// the members, so the narrower action is redundant).
  void absorb_conflicting(const Action& absorber);
  /// Latest completion record covering `component` inside the escalation
  /// window, or nullptr (the §3.3 "failure still manifests" probe).
  CompletionRecord* covering_recent(const std::string& component);
  void prune_recent();
  void enqueue_report(const std::string& component);
  /// Stale or parked queue entry — drop without dispatching.
  bool should_drop(const QueuedReport& entry) const;
  /// Entry cannot dispatch yet (mode-dependent conflict with in-flight work).
  bool blocked_in_queue(const QueuedReport& entry) const;
  void note_in_flight_peak();
  void send_mask(const std::vector<std::string>& components, bool mask);
  void drain_queue();
  void ping_fd();
  void on_fd_timeout();

  sim::Simulator& sim_;
  bus::DedicatedLink& link_;
  RestartTree tree_;
  Oracle& oracle_;
  ProcessControl& process_control_;
  RecConfig config_;
  bool alive_ = true;
  std::uint64_t seq_ = 1;

  /// Every in-flight action (dispatched or backoff-pending), by action id.
  std::map<std::uint64_t, Action> actions_;
  std::vector<CompletionRecord> recent_;
  /// Completed-restart generation per component: bumped once for every
  /// component of every completed action. Queue entries carry the epoch they
  /// were born in; drain drops an entry only when its component's epoch has
  /// advanced past it (a covering restart completed after it queued).
  std::map<std::string, std::uint64_t> completion_epoch_;
  std::map<std::string, RootRestartHistory> root_history_;
  std::map<NodeId, CellBackoff> backoff_;
  std::deque<QueuedReport> queue_;
  std::vector<RecoveryRecord> history_;
  std::vector<std::string> hard_failures_;
  std::set<std::string> parked_;
  /// Components currently masked in FD by us (mask sent, unmask not yet).
  /// Lets park() tell stragglers (masked + still restarting) from healthy
  /// components abandoned actions left masked.
  std::set<std::string> masked_;
  std::uint64_t next_action_id_ = 1;
  std::size_t max_concurrent_ = 0;
  std::uint64_t escalations_ = 0;
  std::uint64_t planned_restarts_ = 0;
  std::uint64_t soft_recoveries_ = 0;
  std::uint64_t restart_timeouts_ = 0;
  std::uint64_t backoffs_applied_ = 0;
  std::uint64_t absorbed_actions_ = 0;
  std::uint64_t touch_promotions_ = 0;
  std::uint64_t lazy_drains_ = 0;
  sim::EventId lazy_drain_event_;

  // FD monitoring.
  std::function<void()> fd_restarter_;
  std::unique_ptr<sim::PeriodicTask> fd_loop_;
  std::uint64_t fd_outstanding_seq_ = 0;
  sim::EventId fd_timeout_;
  bool fd_restart_in_flight_ = false;
};

}  // namespace mercury::core
