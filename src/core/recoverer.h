// REC — the recoverer (paper §2.2, §3.3).
//
// "REC uses a restart tree data structure and a simple policy to choose
// which module(s) to restart upon being notified of a failure. The policy
// also keeps track of past restarts to prevent infinite restarts of 'hard'
// failures."
//
// On a failure report from FD (over the dedicated link) REC:
//   1. consults the oracle for a cell of the restart tree — or, if the same
//      component failed again right after a restart that covered it,
//      escalates to the parent cell (§3.3);
//   2. masks the cell's restart group in FD, restarts the group through
//      ProcessControl, and unmasks on completion;
//   3. serializes recovery actions: reports arriving mid-restart are queued
//      (deduplicated), and reports about components the finishing restart
//      already covered are dropped — if their failure persists, FD will
//      re-detect it and the escalation logic takes over;
//   4. gives up on a chain that keeps failing after `max_root_restarts`
//      full-system restarts, parking it as a hard failure for the operator.
//
// The restart path is itself a fault domain (ISSUE 2), so REC is hardened
// against its own cure failing:
//
//   * a per-restart deadline (sized by the harness from the calibration's
//     worst-case contended startup plus margin) aborts a hung restart —
//     ProcessControl implementations supersede the stale attempt on the next
//     restart_group — and escalates it like a persisting failure;
//   * exponential backoff (base/factor/cap, with decay) paces successive
//     restart attempts of the same cell, so a crash-looping startup cannot
//     become a restart storm;
//   * an attempt budget per failure chain feeds the existing hard-failure
//     parking, and parked components are masked in FD *permanently*, so the
//     station keeps operating degraded instead of detect/restart-looping.
//
// All hardening knobs default off (legacy behavior); completions are guarded
// by an action id so a hung restart that finishes late, or a superseded
// group draining, can never be mistaken for the current action.
//
// REC also answers FD's pings and monitors FD in return (§2.2's two special
// cases); the FD restart action is injected by the harness.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bus/dedicated_link.h"
#include "core/oracle.h"
#include "core/process_control.h"
#include "core/restart_tree.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace mercury::core {

struct RecConfig {
  /// A report for a component covered by the previous restart, arriving
  /// within this window of the restart's completion, is treated as "the
  /// failure still manifests" and escalates (§3.3). Sized just above the
  /// worst-case re-detection latency (ping period + timeout + link), so an
  /// unrelated fresh failure rarely masquerades as a persisting one.
  util::Duration escalation_window = util::Duration::seconds(2.5);
  /// Recursive recovery (§7): try the failed component's *soft* recovery
  /// procedure before any restart. Cheap when the failure is soft-curable
  /// (a reconnect beats a 20 s restart); costs one soft-procedure-plus-
  /// redetect round when it is not. Requires ProcessControl support.
  bool enable_soft_recovery = false;
  /// Full-system restarts tolerated per recurring component failure before
  /// declaring a hard failure.
  int max_root_restarts = 2;
  /// How long uncured-root-restart counts accumulate per component; a
  /// component whose failures outlive this many root restarts inside the
  /// window is parked.
  util::Duration root_retry_window = util::Duration::seconds(90.0);
  util::Duration fd_ping_period = util::Duration::seconds(1.0);
  util::Duration fd_ping_timeout = util::Duration::millis(300.0);
  std::string fd_name = "fd";
  std::string rec_name = "rec";

  // --- Restart-path hardening (ISSUE 2) -----------------------------------
  /// Deadline for one restart action (kill -> every group member ready). A
  /// restart still in flight when it expires is abandoned and escalated like
  /// a persisting failure; the superseding restart re-kills the stragglers.
  /// Size it above the worst-case contended startup (the experiment rig uses
  /// the calibration's slowest component x full contention x margin). Zero
  /// disables: legacy behavior, trust on_complete unconditionally.
  util::Duration restart_deadline = util::Duration::zero();
  /// Exponential backoff between successive restart attempts of the same
  /// cell: attempt n of a streak starts no earlier than backoff_base *
  /// backoff_factor^(n-1) after attempt n-1 began, capped at backoff_cap.
  /// Zero base disables.
  util::Duration backoff_base = util::Duration::zero();
  double backoff_factor = 2.0;
  util::Duration backoff_cap = util::Duration::seconds(30.0);
  /// A cell with no restart attempts for this long forgets its streak.
  util::Duration backoff_decay = util::Duration::seconds(60.0);
  /// Restart attempts tolerated per failure chain (reactive actions only,
  /// timed-out attempts included) before the chain is parked as a hard
  /// failure. Zero disables (only max_root_restarts parks).
  int max_attempts_per_chain = 0;
};

/// One completed recovery action, for logs and experiment audits.
struct RecoveryRecord {
  std::string reported_component;
  NodeId node = kInvalidNode;
  std::vector<std::string> restarted;
  int escalation_level = 0;
  /// Proactive rejuvenation (health monitor) rather than reactive recovery.
  bool planned = false;
  /// Soft recovery procedure (§7 recursive recovery) rather than a restart.
  bool soft = false;
  util::TimePoint report_time;
  util::TimePoint complete_time;
};

class Recoverer {
 public:
  Recoverer(sim::Simulator& sim, bus::DedicatedLink& link, RestartTree tree,
            Oracle& oracle, ProcessControl& process_control, RecConfig config);
  ~Recoverer();

  Recoverer(const Recoverer&) = delete;
  Recoverer& operator=(const Recoverer&) = delete;

  /// Bind the link endpoint and begin answering/monitoring FD.
  void start();

  /// Proactive (planned) restart of the component's own cell — the §7
  /// rejuvenation path, driven by the health monitor. Declined (returns
  /// false) while reactive recovery is in flight; accepted restarts flow
  /// through the same mask/restart/unmask machinery and count toward the
  /// escalation context like any other restart.
  bool planned_restart(const std::string& component);

  const RestartTree& tree() const { return tree_; }

  // --- REC as a process ---------------------------------------------------
  bool alive() const { return alive_; }
  void crash();
  void restart_complete();

  /// Hook invoked when REC decides FD is dead ("we wrote REC to issue
  /// liveness pings to FD and detect its failure, after which it can
  /// initiate FD recovery").
  void set_fd_restarter(std::function<void()> restarter);
  void monitor_fd();

  // --- Introspection ------------------------------------------------------
  const std::vector<RecoveryRecord>& history() const { return history_; }
  std::uint64_t restarts_executed() const { return history_.size(); }
  std::uint64_t escalations() const { return escalations_; }
  std::uint64_t planned_restarts() const { return planned_restarts_; }
  std::uint64_t soft_recoveries() const { return soft_recoveries_; }
  bool restart_in_progress() const { return current_.has_value(); }
  /// Chains declared unrecoverable-by-restart.
  const std::vector<std::string>& hard_failures() const { return hard_failures_; }
  /// Components permanently masked in FD by hard-failure parking: the
  /// station operates degraded without them until an operator intervenes.
  const std::set<std::string>& parked() const { return parked_; }
  /// Restart actions abandoned by the per-restart deadline.
  std::uint64_t restart_timeouts() const { return restart_timeouts_; }
  /// Restart attempts delayed by the same-cell backoff policy.
  std::uint64_t backoffs_applied() const { return backoffs_applied_; }

 private:
  struct CurrentRestart {
    std::string reported_component;
    NodeId node = kInvalidNode;
    std::vector<std::string> components;
    int escalation_level = 0;
    bool planned = false;
    bool soft = false;
    util::TimePoint report_time;
    std::uint64_t trace_span = 0;  // open obs span for this action
    std::uint64_t action_id = 0;   // stale-completion guard
    sim::EventId deadline_event;   // pending restart_deadline, if any
  };
  struct LastRestart {
    NodeId node = kInvalidNode;
    std::vector<std::string> components;
    int escalation_level = 0;
    bool soft = false;
    util::TimePoint complete_time;
    std::string chain_component;  // component that opened the chain
    bool feedback_sent = false;
  };
  /// Per-component record of recent root-level restarts triggered by that
  /// component's failures, for the hard-failure give-up. Keyed by the
  /// *reported* component so an unrelated crash landing right after a full
  /// reboot cannot get an innocent component parked.
  struct RootRestartHistory {
    int count = 0;
    util::TimePoint last = util::TimePoint::origin() - util::Duration::hours(1.0);
  };
  /// Same-cell restart pacing (crash loops must not become restart storms).
  struct CellBackoff {
    int streak = 0;
    util::TimePoint last = util::TimePoint::origin() - util::Duration::hours(1.0);
  };

  void on_link_message(const msg::Message& message);
  void handle_report(const std::string& component);
  void execute(CurrentRestart restart);
  void execute_soft(CurrentRestart restart);
  /// Open the trace span, mask the group, start the deadline and hand the
  /// group to ProcessControl (execute() after any backoff delay).
  void dispatch(CurrentRestart restart);
  void on_restart_complete(std::uint64_t action_id);
  void on_restart_timeout(std::uint64_t action_id);
  /// True when the chain's attempt budget is exhausted; parks and returns
  /// true, or returns false to keep going.
  bool budget_exhausted_then_park(const CurrentRestart& restart);
  /// Root-level give-up accounting shared by the persisting-failure and
  /// restart-timeout escalation paths; returns true when it parked.
  bool note_root_restart_then_maybe_park(const std::string& component);
  /// Declare `component`'s chain a hard failure. Permanently masks it in FD,
  /// along with any straggler still in flight from the chain's abandoned
  /// restarts (REC serializes restarts, so every in-flight component belongs
  /// to this chain and is in unknown startup state). Healthy components left
  /// masked by abandoned actions are unmasked — they return to service.
  void park(const std::string& component, const std::string& reason);
  bool is_parked(const std::string& component) const;
  void send_mask(const std::vector<std::string>& components, bool mask);
  void drain_queue();
  void ping_fd();
  void on_fd_timeout();

  sim::Simulator& sim_;
  bus::DedicatedLink& link_;
  RestartTree tree_;
  Oracle& oracle_;
  ProcessControl& process_control_;
  RecConfig config_;
  bool alive_ = true;
  std::uint64_t seq_ = 1;

  std::optional<CurrentRestart> current_;
  std::optional<LastRestart> last_;
  std::map<std::string, RootRestartHistory> root_history_;
  std::map<NodeId, CellBackoff> backoff_;
  std::deque<std::string> queue_;
  std::vector<RecoveryRecord> history_;
  std::vector<std::string> hard_failures_;
  std::set<std::string> parked_;
  /// Components currently masked in FD by us (mask sent, unmask not yet).
  /// Lets park() tell stragglers (masked + still restarting) from healthy
  /// components abandoned actions left masked.
  std::set<std::string> masked_;
  /// Reactive restart attempts in the chain currently being worked
  /// (chain = the run of escalations that began at one fresh report).
  int chain_attempts_ = 0;
  std::uint64_t next_action_id_ = 1;
  std::uint64_t escalations_ = 0;
  std::uint64_t planned_restarts_ = 0;
  std::uint64_t soft_recoveries_ = 0;
  std::uint64_t restart_timeouts_ = 0;
  std::uint64_t backoffs_applied_ = 0;

  // FD monitoring.
  std::function<void()> fd_restarter_;
  std::unique_ptr<sim::PeriodicTask> fd_loop_;
  std::uint64_t fd_outstanding_seq_ = 0;
  sim::EventId fd_timeout_;
  bool fd_restart_in_flight_ = false;
};

}  // namespace mercury::core
