// RecoveryTimeline: structured incident forensics.
//
// The paper measures recovery with two log lines ("we log the time when the
// signal is sent; once the component determines it is functionally ready,
// it logs a timestamped message", §4.1). Operators debugging a recovery
// want the whole causal chain: injection, detection, the recoverer's
// choices, restart completion, cure — plus a per-component Gantt strip of
// who was down when. The timeline subscribes to the failure board and
// ingests the recoverer's history; nothing in the control path depends on
// it.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/failure_board.h"
#include "core/recoverer.h"
#include "util/time.h"

namespace mercury::core {

enum class TimelineEventKind {
  kFailureInjected,
  kFailureCured,
  kRestartBegun,      // derived from recovery records (report time)
  kRestartCompleted,
  kSoftRecovery,
  kPlannedRestart,
};

std::string_view to_string(TimelineEventKind kind);

struct TimelineEvent {
  util::TimePoint at;
  TimelineEventKind kind = TimelineEventKind::kFailureInjected;
  /// Component (failures) or cell label + group (recovery actions).
  std::string subject;
  std::string detail;
};

class RecoveryTimeline {
 public:
  /// Subscribe to the board's inject/cure streams. Call before injecting.
  void observe(FailureBoard& board);

  /// Ingest the recoverer's completed actions (idempotent: records already
  /// imported are skipped; call again any time).
  void ingest(const Recoverer& rec, const RestartTree& tree);

  void record(TimelineEvent event);

  /// Events sorted by time (stable for equal timestamps).
  std::vector<TimelineEvent> events() const;
  std::size_t size() const { return events_.size(); }
  void clear();

  /// Human-readable listing: one line per event, with time deltas.
  std::string render_listing() const;

  /// Per-component availability strip over [from, to): '#' while a failure
  /// manifesting at the component was active, '-' otherwise. One row per
  /// component seen in failure events.
  std::string render_gantt(util::TimePoint from, util::TimePoint to,
                           std::size_t width = 72) const;

 private:
  std::vector<TimelineEvent> events_;
  std::size_t ingested_records_ = 0;
};

}  // namespace mercury::core
