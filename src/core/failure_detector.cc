#include "core/failure_detector.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "util/log.h"
#include "util/strings.h"

namespace mercury::core {

using util::LogLevel;
using util::LogLine;

FailureDetector::FailureDetector(sim::Simulator& sim, bus::MessageBus& bus,
                                 bus::DedicatedLink& link,
                                 std::vector<std::string> targets, FdConfig config)
    : sim_(sim), bus_(bus), link_(link), config_(std::move(config)) {
  for (auto& name : targets) {
    TargetState state;
    state.name = name;
    targets_.emplace(std::move(name), std::move(state));
  }
}

FailureDetector::~FailureDetector() = default;

void FailureDetector::start() {
  reattach();
  link_.bind(config_.fd_name,
             [this](const msg::Message& message) { on_link_message(message); });

  // Stagger the ping loops evenly across the period so detection latency is
  // uniform regardless of which component fails.
  const std::size_t n = targets_.size();
  std::size_t index = 0;
  for (auto& [name, target] : targets_) {
    target.loop = std::make_unique<sim::PeriodicTask>(
        sim_, "fd.ping:" + name, config_.ping_period,
        [this, &target] { ping(target); });
    const Duration phase =
        config_.ping_period * (static_cast<double>(index + 1) / static_cast<double>(n));
    target.loop->start_with_phase(phase);
    ++index;
  }
}

void FailureDetector::reattach() {
  bus_.attach(config_.fd_name,
              [this](const msg::Message& message) { on_bus_message(message); });
}

void FailureDetector::crash() {
  alive_ = false;
  obs::instant(sim_.now(), "proc", "fd.crash", "fd");
  LogLine(LogLevel::kInfo, sim_.now(), "fd") << "crashed (fail-silent)";
}

void FailureDetector::restart_complete() {
  alive_ = true;
  reattach();
  // Fresh start state: forget outstanding probes and verification.
  for (auto& [name, target] : targets_) {
    if (target.timeout_event.valid()) sim_.cancel(target.timeout_event);
    target.outstanding_seq = 0;
    target.consecutive_misses = 0;
    target.timeout_event = sim::EventId{};
  }
  if (verify_timeout_.valid()) sim_.cancel(verify_timeout_);
  verifying_mbus_ = false;
  pending_reports_.clear();
  obs::instant(sim_.now(), "proc", "fd.restarted", "fd");
  LogLine(LogLevel::kInfo, sim_.now(), "fd") << "restarted";
}

bool FailureDetector::is_masked(const std::string& target) const {
  return masked_.contains(target);
}

void FailureDetector::ping(TargetState& target) {
  if (!alive_) return;
  if (masked_.contains(target.name)) return;
  // While mbus is being restarted nothing is reachable; pinging would only
  // produce a storm of vacuous timeouts.
  if (masked_.contains(config_.mbus_name)) return;
  if (target.outstanding_seq != 0) return;  // previous probe still pending

  const std::uint64_t seq = seq_++;
  target.outstanding_seq = seq;
  bus_.send(msg::make_ping(config_.fd_name, target.name, seq));
  ++pings_sent_;
  target.timeout_event = sim_.schedule_after(
      config_.ping_timeout, "fd.timeout:" + target.name, [this, &target, seq] {
        if (target.outstanding_seq == seq) on_ping_timeout(target);
      });
}

void FailureDetector::on_ping_timeout(TargetState& target) {
  target.outstanding_seq = 0;
  if (!alive_) return;
  if (masked_.contains(target.name)) return;
  // The bus itself is being restarted: universal silence is expected.
  if (masked_.contains(config_.mbus_name)) return;

  // k-of-n suspicion: tolerate transient message loss by requiring
  // consecutive misses before accusing anyone (the next periodic ping is
  // the retry).
  ++target.consecutive_misses;
  obs::instant(sim_.now(), "detect", "fd.suspect", "fd",
               {{"component", target.name},
                {"misses", std::to_string(target.consecutive_misses)}});
  obs::incr("fd.suspicions");
  if (target.consecutive_misses < config_.misses_before_report) return;

  if (target.name == config_.mbus_name) {
    report(config_.mbus_name);
    return;
  }
  // The silence may be the bus, not the component (§2.2: "mbus itself is
  // monitored as well"). Verify before accusing the component.
  begin_mbus_verification(target.name);
}

void FailureDetector::begin_mbus_verification(const std::string& pending) {
  if (std::find(pending_reports_.begin(), pending_reports_.end(), pending) ==
      pending_reports_.end()) {
    pending_reports_.push_back(pending);
  }
  if (verifying_mbus_) return;  // probe already in flight; ride along
  verifying_mbus_ = true;
  verify_span_ = obs::begin_span(sim_.now(), "detect", "fd.verify-mbus", "fd",
                                 {{"pending", pending}});
  const std::uint64_t seq = seq_++;
  verify_seq_ = seq;
  bus_.send(msg::make_ping(config_.fd_name, config_.mbus_name, seq));
  ++pings_sent_;
  verify_timeout_ =
      sim_.schedule_after(config_.mbus_verify_timeout, "fd.verify-mbus",
                          [this, seq] {
                            if (verifying_mbus_ && verify_seq_ == seq) {
                              finish_mbus_verification(/*mbus_alive=*/false);
                            }
                          });
}

void FailureDetector::finish_mbus_verification(bool mbus_alive) {
  verifying_mbus_ = false;
  verify_seq_ = 0;
  obs::end_span(sim_.now(), verify_span_,
                {{"mbus_alive", mbus_alive ? "1" : "0"}});
  verify_span_ = 0;
  if (verify_timeout_.valid()) {
    sim_.cancel(verify_timeout_);
    verify_timeout_ = sim::EventId{};
  }
  auto pending = std::move(pending_reports_);
  pending_reports_.clear();
  if (!alive_) return;
  if (!mbus_alive) {
    // All the pending silences are explained by the dead bus.
    report(config_.mbus_name);
    return;
  }
  for (const auto& component : pending) report(component);
}

void FailureDetector::on_bus_message(const msg::Message& message) {
  if (!alive_) return;
  if (message.kind != msg::Kind::kPong) return;
  ++pongs_received_;

  if (verifying_mbus_ && message.from == config_.mbus_name &&
      message.seq == verify_seq_) {
    finish_mbus_verification(/*mbus_alive=*/true);
    return;
  }
  const auto it = targets_.find(message.from);
  if (it == targets_.end()) return;
  TargetState& target = it->second;
  if (target.outstanding_seq == message.seq) {
    target.outstanding_seq = 0;
    target.consecutive_misses = 0;
    if (target.timeout_event.valid()) {
      sim_.cancel(target.timeout_event);
      target.timeout_event = sim::EventId{};
    }
  }
}

void FailureDetector::report(const std::string& component) {
  if (masked_.contains(component)) return;  // REC is already on it
  auto it = targets_.find(component);
  if (it != targets_.end()) {
    TargetState& target = it->second;
    if (sim_.now() - target.last_report < config_.report_cooldown) return;
    target.last_report = sim_.now();
  }
  ++failures_reported_;
  obs::instant(sim_.now(), "detect", "fd.report", "fd",
               {{"component", component}});
  obs::incr("fd.reports");
  LogLine(LogLevel::kInfo, sim_.now(), "fd")
      << "detected failure of " << component << "; notifying rec";
  msg::Message report = msg::make_command(config_.fd_name, config_.rec_name,
                                          seq_++, "report-failure");
  report.body.set_attr("component", component);
  link_.send(report);
}

void FailureDetector::on_link_message(const msg::Message& message) {
  // REC pings FD even while FD is crashed — that is how the crash is
  // noticed, so the alive check must precede everything.
  if (message.kind == msg::Kind::kPing) {
    if (alive_) link_.send(msg::make_pong(message, config_.fd_name));
    return;
  }
  if (message.kind == msg::Kind::kPong) {
    if (alive_ && message.from == config_.rec_name &&
        message.seq == rec_outstanding_seq_) {
      rec_outstanding_seq_ = 0;
      if (rec_timeout_.valid()) {
        sim_.cancel(rec_timeout_);
        rec_timeout_ = sim::EventId{};
      }
    }
    return;
  }
  if (!alive_) return;
  if (message.kind != msg::Kind::kCommand) return;
  const auto components =
      util::split(message.body.attr_or("components", ""), ',');
  if (message.verb == "mask") {
    apply_mask(components, true);
  } else if (message.verb == "unmask") {
    apply_mask(components, false);
  }
}

void FailureDetector::apply_mask(const std::vector<std::string>& components,
                                 bool masked) {
  for (const auto& component : components) {
    if (component.empty()) continue;
    if (masked) {
      masked_.insert(component);
      // Cancel any in-flight suspicion of a component REC is handling.
      const auto it = targets_.find(component);
      if (it != targets_.end()) {
        it->second.outstanding_seq = 0;
        it->second.consecutive_misses = 0;
        if (it->second.timeout_event.valid()) {
          sim_.cancel(it->second.timeout_event);
          it->second.timeout_event = sim::EventId{};
        }
      }
      std::erase(pending_reports_, component);
    } else {
      masked_.erase(component);
    }
  }
}

void FailureDetector::set_rec_restarter(std::function<void()> restarter) {
  rec_restarter_ = std::move(restarter);
}

void FailureDetector::monitor_rec() {
  rec_loop_ = std::make_unique<sim::PeriodicTask>(
      sim_, "fd.ping-rec", config_.ping_period, [this] { ping_rec(); });
  rec_loop_->start_with_phase(config_.ping_period * 0.5);
}

void FailureDetector::ping_rec() {
  if (!alive_) return;
  if (rec_restart_in_flight_) return;
  if (rec_outstanding_seq_ != 0) return;
  const std::uint64_t seq = seq_++;
  rec_outstanding_seq_ = seq;
  link_.send(msg::make_ping(config_.fd_name, config_.rec_name, seq));
  rec_timeout_ = sim_.schedule_after(config_.ping_timeout, "fd.rec-timeout",
                                     [this, seq] {
                                       if (rec_outstanding_seq_ == seq) {
                                         rec_outstanding_seq_ = 0;
                                         on_rec_timeout();
                                       }
                                     });
}

void FailureDetector::on_rec_timeout() {
  if (!alive_ || !rec_restarter_) return;
  obs::instant(sim_.now(), "detect", "fd.rec-unresponsive", "fd");
  obs::incr("fd.rec_restarts");
  LogLine(LogLevel::kWarn, sim_.now(), "fd")
      << "rec unresponsive; initiating rec recovery";
  rec_restart_in_flight_ = true;
  rec_restarter_();
  // Allow renewed monitoring once REC had a chance to come back; the
  // restarter is responsible for the actual restart duration. Re-arm after
  // a grace period of a few ping periods.
  sim_.schedule_after(config_.ping_period * 5.0, "fd.rec-grace",
                      [this] { rec_restart_in_flight_ = false; });
}

}  // namespace mercury::core
