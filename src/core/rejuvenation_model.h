// Analytic rejuvenation model (paper §7).
//
// "Interesting work in software rejuvenation focuses on analytic modeling
// of system uptime to derive optimal rejuvenation policies that maximize
// availability under a modelled workload [Garg et al.]. ... we expect to
// explore a more detailed analytic model in future work."
//
// We model one aging component as a four-state continuous-time Markov
// chain:
//
//            alpha                lambda_aged
//   FRESH ----------> AGED ---------------------> REPAIRING
//     |                |                             |
//     | lambda_fresh   | rho (rejuvenation policy)   | 1/repair
//     v                v                             v
//   REPAIRING      REJUVENATING ------ 1/rejuv ---> FRESH
//
// Aging (FRESH -> AGED) raises the failure hazard; the policy knob `rho`
// is the rate at which an aged component is proactively rejuvenated (the
// health monitor's trigger). Rejuvenation and repair both cost downtime,
// but unplanned repair downtime is worth more (§5.2), so the optimum
// minimizes a *weighted* downtime, not raw unavailability.
#pragma once

namespace mercury::core {

struct RejuvenationModel {
  /// FRESH -> AGED rate, 1/s (1 / typical time-to-degradation).
  double aging_rate = 1.0 / 300.0;
  /// Failure rate while fresh, 1/s.
  double fresh_failure_rate = 1.0 / 3600.0;
  /// Failure rate while aged, 1/s (the raised hazard).
  double aged_failure_rate = 1.0 / 480.0;
  /// Policy: AGED -> REJUVENATING rate, 1/s (0 = reactive only).
  double rejuvenation_rate = 0.0;
  /// Planned restart duration, s (no detection latency).
  double rejuvenation_duration_s = 5.8;
  /// Unplanned repair duration, s (detection + restart).
  double repair_duration_s = 6.5;
};

struct RejuvenationSteadyState {
  double p_fresh = 0.0;
  double p_aged = 0.0;
  double p_rejuvenating = 0.0;
  double p_repairing = 0.0;

  double availability() const { return p_fresh + p_aged; }
  /// Fraction of time in planned (schedulable) downtime.
  double planned_downtime() const { return p_rejuvenating; }
  /// Fraction of time in unplanned downtime.
  double unplanned_downtime() const { return p_repairing; }
  /// §5.2 objective: unplanned seconds cost `unplanned_weight` x planned.
  double weighted_downtime(double unplanned_weight) const {
    return unplanned_weight * p_repairing + p_rejuvenating;
  }
  /// Unplanned failures per second (flux into REPAIRING).
  double unplanned_failure_rate(const RejuvenationModel& model) const {
    return p_fresh * model.fresh_failure_rate + p_aged * model.aged_failure_rate;
  }
};

/// Steady-state distribution of the chain (pi Q = 0, sum pi = 1).
RejuvenationSteadyState solve_rejuvenation(const RejuvenationModel& model);

/// The rejuvenation rate minimizing weighted downtime, found by golden-
/// section search over [0, max_rate]. Returns 0 when rejuvenation never
/// pays (e.g. no hazard increase with age — the memoryless case).
double optimal_rejuvenation_rate(RejuvenationModel model, double unplanned_weight,
                                 double max_rate = 1.0);

}  // namespace mercury::core
