// HealthMonitor: turns beacon streams into proactive rejuvenation.
//
// Reactive restarts (FD -> REC) cure failures after they happen; the
// monitor watches the §7 health beacons for components *about to* fail —
// leaking memory, deepening queues, repeated warnings — and requests a
// planned restart first. Planned downtime is cheaper (§5.2): no detection
// latency, and the restart can wait for a maintenance window (e.g. between
// satellite passes).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "core/health.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace mercury::core {

struct HealthPolicy {
  /// Memory above this requests rejuvenation.
  double memory_limit_mb = 256.0;
  /// Queue depth above this requests rejuvenation.
  double queue_limit = 1000.0;
  /// Consecutive beacons carrying warnings before acting.
  int warning_beacons_before_action = 3;
  /// A failed connectivity/consistency self-check acts immediately.
  bool act_on_failed_self_check = true;
  /// Minimum spacing between rejuvenations of the same component.
  util::Duration min_spacing = util::Duration::minutes(5.0);
  /// How often to re-check deferred requests against the maintenance
  /// window.
  util::Duration retry_period = util::Duration::seconds(10.0);
};

class HealthMonitor {
 public:
  /// `endpoint` is the monitor's mbus name (beacons are addressed to it).
  HealthMonitor(sim::Simulator& sim, bus::MessageBus& bus, std::string endpoint,
                HealthPolicy policy);
  ~HealthMonitor();

  HealthMonitor(const HealthMonitor&) = delete;
  HealthMonitor& operator=(const HealthMonitor&) = delete;

  /// Attach to the bus and begin consuming beacons.
  void start();
  /// Re-attach after a bus restart.
  void reattach();

  /// Action to take when a component needs rejuvenation (typically
  /// Recoverer::planned_restart). Returns whether the restart was accepted;
  /// a refusal (recovery already in progress) is retried on the next
  /// retry_period tick.
  void set_rejuvenator(std::function<bool(const std::string&)> rejuvenator);

  /// Gate: planned restarts only run when this returns true (e.g. "no
  /// satellite pass in the next two minutes"). Default: always open.
  void set_maintenance_window(std::function<bool()> window_open);

  /// Hard-failure escalations (beacon reported unrecoverable hardware) go
  /// here instead of the rejuvenator; default logs only.
  void set_hard_failure_handler(std::function<void(const std::string&)> handler);

  // --- Introspection ------------------------------------------------------
  std::optional<HealthBeacon> latest(const std::string& component) const;
  std::uint64_t beacons_received() const { return beacons_received_; }
  std::uint64_t rejuvenations_requested() const { return rejuvenations_; }
  std::uint64_t rejuvenations_deferred() const { return deferred_; }
  const std::vector<std::string>& hard_failure_reports() const {
    return hard_reports_;
  }

 private:
  struct ComponentState {
    std::optional<HealthBeacon> latest;
    int consecutive_warning_beacons = 0;
    util::TimePoint last_rejuvenation =
        util::TimePoint::origin() - util::Duration::hours(1.0);
    bool pending = false;  ///< wants rejuvenation, waiting for the window
  };

  void on_message(const msg::Message& message);
  void evaluate(const std::string& component, ComponentState& state);
  void request(const std::string& component, ComponentState& state);
  void drain_pending();

  sim::Simulator& sim_;
  bus::MessageBus& bus_;
  std::string endpoint_;
  HealthPolicy policy_;
  std::function<bool(const std::string&)> rejuvenator_;
  std::function<bool()> window_open_ = [] { return true; };
  std::function<void(const std::string&)> hard_handler_;
  std::map<std::string, ComponentState> components_;
  std::unique_ptr<sim::PeriodicTask> retry_task_;
  std::uint64_t beacons_received_ = 0;
  std::uint64_t rejuvenations_ = 0;
  std::uint64_t deferred_ = 0;
  std::vector<std::string> hard_reports_;
};

}  // namespace mercury::core
