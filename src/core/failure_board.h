// FailureBoard: the ground truth of which failures are active.
//
// Components consult the board to decide whether they answer pings (a
// manifesting component is fail-silent); the process manager reports restart
// completions so the board can apply the cure rule: a failure clears once
// every member of its cure set has completed a restart after the failure's
// onset. A partial cure (e.g. restarting only pbcom for a {fedr,pbcom}
// failure) leaves the failure active, so FD re-detects it and the recoverer
// escalates — exactly the §4.4 faulty-oracle dynamics.
//
// The perfect oracle (an idealization the paper assumes in A_oracle) reads
// cure sets from the board; realistic oracles never do.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/failure.h"
#include "util/time.h"

namespace mercury::core {

class FailureBoard {
 public:
  using CureListener = std::function<void(const ActiveFailure&, util::TimePoint)>;
  using InjectListener = std::function<void(const ActiveFailure&)>;

  /// Activate a failure; returns its id.
  FailureId inject(FailureSpec spec, util::TimePoint now);

  /// Record that `component` completed a restart; cures any failure whose
  /// cure set is now fully restarted. Fires cure listeners.
  void on_restart_complete(const std::string& component, util::TimePoint now);

  /// Record that `component` completed its soft recovery procedure; cures
  /// only failures marked soft_curable that manifest at the component.
  void on_soft_recovery_complete(const std::string& component,
                                 util::TimePoint now);

  /// True if some active failure manifests at `component` (it must appear
  /// fail-silent).
  bool manifests_at(const std::string& component) const;

  /// Active failures manifesting at `component` (usually zero or one).
  std::vector<ActiveFailure> active_at(const std::string& component) const;

  const std::vector<ActiveFailure>& active() const { return active_; }
  bool any_active() const { return !active_.empty(); }

  /// Forcibly clear a failure (used by tests); returns false if unknown.
  /// Does NOT fire cure listeners: the failure was removed, not cured.
  bool clear(FailureId id);

  void add_cure_listener(CureListener listener);
  void add_inject_listener(InjectListener listener);

  std::uint64_t total_injected() const { return next_id_ - 1; }
  std::uint64_t total_cured() const { return total_cured_; }

  // --- Restart-time faults ------------------------------------------------
  // The restart path is itself a fault domain (ISSUE 2): the board holds the
  // ground-truth spec of how each component's restarts misbehave, and the
  // process manager consults it at every startup attempt. An all-zero spec
  // (the default) means restarts always succeed.

  /// Install (or, with an inactive spec, remove) `component`'s restart-time
  /// fault behavior.
  void set_restart_faults(const std::string& component, RestartFaultSpec spec);

  /// The component's restart-fault spec; all-zero default if none installed.
  const RestartFaultSpec& restart_faults(const std::string& component) const;

  bool any_restart_faults() const { return !restart_faults_.empty(); }

  /// Bookkeeping hooks for the process manager: a restart attempt of
  /// `component` hung / crashed during startup. Emit trace events and bump
  /// counters so chaos campaigns can audit the injected restart faults.
  void note_restart_hang(const std::string& component, util::TimePoint now);
  void note_restart_crash(const std::string& component, util::TimePoint now);

  std::uint64_t restart_hangs() const { return restart_hangs_; }
  std::uint64_t restart_crashes() const { return restart_crashes_; }

 private:
  std::vector<ActiveFailure> active_;
  std::vector<CureListener> cure_listeners_;
  std::vector<InjectListener> inject_listeners_;
  std::map<std::string, RestartFaultSpec> restart_faults_;
  FailureId next_id_ = 1;
  std::uint64_t total_cured_ = 0;
  std::uint64_t restart_hangs_ = 0;
  std::uint64_t restart_crashes_ = 0;
};

}  // namespace mercury::core
