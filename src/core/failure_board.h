// FailureBoard: the ground truth of which failures are active.
//
// Components consult the board to decide whether they answer pings (a
// manifesting component is fail-silent); the process manager reports restart
// completions so the board can apply the cure rule: a failure clears once
// every member of its cure set has completed a restart after the failure's
// onset. A partial cure (e.g. restarting only pbcom for a {fedr,pbcom}
// failure) leaves the failure active, so FD re-detects it and the recoverer
// escalates — exactly the §4.4 faulty-oracle dynamics.
//
// The perfect oracle (an idealization the paper assumes in A_oracle) reads
// cure sets from the board; realistic oracles never do.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/failure.h"
#include "util/time.h"

namespace mercury::core {

class FailureBoard {
 public:
  using CureListener = std::function<void(const ActiveFailure&, util::TimePoint)>;
  using InjectListener = std::function<void(const ActiveFailure&)>;

  /// Activate a failure; returns its id.
  FailureId inject(FailureSpec spec, util::TimePoint now);

  /// Record that `component` completed a restart; cures any failure whose
  /// cure set is now fully restarted. Fires cure listeners.
  void on_restart_complete(const std::string& component, util::TimePoint now);

  /// Record that `component` completed its soft recovery procedure; cures
  /// only failures marked soft_curable that manifest at the component.
  void on_soft_recovery_complete(const std::string& component,
                                 util::TimePoint now);

  /// True if some active failure manifests at `component` (it must appear
  /// fail-silent).
  bool manifests_at(const std::string& component) const;

  /// Active failures manifesting at `component` (usually zero or one).
  std::vector<ActiveFailure> active_at(const std::string& component) const;

  const std::vector<ActiveFailure>& active() const { return active_; }
  bool any_active() const { return !active_.empty(); }

  /// Forcibly clear a failure (used by tests); returns false if unknown.
  bool clear(FailureId id);

  void add_cure_listener(CureListener listener);
  void add_inject_listener(InjectListener listener);

  std::uint64_t total_injected() const { return next_id_ - 1; }
  std::uint64_t total_cured() const { return total_cured_; }

 private:
  std::vector<ActiveFailure> active_;
  std::vector<CureListener> cure_listeners_;
  std::vector<InjectListener> inject_listeners_;
  FailureId next_id_ = 1;
  std::uint64_t total_cured_ = 0;
};

}  // namespace mercury::core
