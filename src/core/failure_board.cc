#include "core/failure_board.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "util/strings.h"

namespace mercury::core {

namespace {

/// Fault onset/cure are the trace anchors every phase breakdown hangs off
/// (obs/phases.h): detection latency is measured from fault.manifest.
void trace_cured(const ActiveFailure& failure, util::TimePoint now) {
  obs::instant(now, "fault", "fault.cured", "board",
               {{"manifest", failure.spec.manifest},
                {"id", std::to_string(failure.id)},
                {"kind", failure.spec.kind}});
  obs::incr("faults.cured");
  obs::observe("fault.active_seconds", (now - failure.onset).to_seconds());
}

}  // namespace

FailureSpec make_crash(std::string component) {
  FailureSpec spec;
  spec.cure_set = {component};
  spec.manifest = std::move(component);
  spec.kind = "crash";
  return spec;
}

FailureSpec make_stale_attachment(std::string component) {
  FailureSpec spec = make_crash(std::move(component));
  spec.soft_curable = true;
  spec.kind = "stale-attachment";
  return spec;
}

FailureSpec make_joint(std::string manifest, std::vector<std::string> cure_set) {
  FailureSpec spec;
  spec.manifest = std::move(manifest);
  spec.cure_set = std::move(cure_set);
  std::sort(spec.cure_set.begin(), spec.cure_set.end());
  spec.cure_set.erase(std::unique(spec.cure_set.begin(), spec.cure_set.end()),
                      spec.cure_set.end());
  assert(std::binary_search(spec.cure_set.begin(), spec.cure_set.end(),
                            spec.manifest) &&
         "cure set must include the manifest component");
  spec.kind = "joint";
  return spec;
}

FailureId FailureBoard::inject(FailureSpec spec, util::TimePoint now) {
  assert(!spec.manifest.empty());
  assert(!spec.cure_set.empty());
  ActiveFailure failure;
  failure.id = next_id_++;
  failure.spec = std::move(spec);
  failure.onset = now;
  active_.push_back(failure);
  obs::instant(now, "fault", "fault.manifest", "board",
               {{"manifest", active_.back().spec.manifest},
                {"cure", util::join(active_.back().spec.cure_set, ",")},
                {"kind", active_.back().spec.kind},
                {"id", std::to_string(failure.id)}});
  obs::incr("faults.injected");
  for (const auto& listener : inject_listeners_) listener(active_.back());
  return failure.id;
}

void FailureBoard::on_restart_complete(const std::string& component,
                                       util::TimePoint now) {
  std::vector<ActiveFailure> cured;
  for (auto& failure : active_) {
    const auto& cure_set = failure.spec.cure_set;
    if (std::find(cure_set.begin(), cure_set.end(), component) == cure_set.end()) {
      continue;
    }
    if (std::find(failure.restarted.begin(), failure.restarted.end(), component) ==
        failure.restarted.end()) {
      failure.restarted.push_back(component);
    }
    if (failure.cured()) cured.push_back(failure);
  }
  if (cured.empty()) return;
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [](const ActiveFailure& f) { return f.cured(); }),
                active_.end());
  total_cured_ += cured.size();
  for (const auto& failure : cured) {
    trace_cured(failure, now);
    for (const auto& listener : cure_listeners_) listener(failure, now);
  }
}

void FailureBoard::on_soft_recovery_complete(const std::string& component,
                                             util::TimePoint now) {
  std::vector<ActiveFailure> cured;
  for (const auto& failure : active_) {
    if (failure.spec.soft_curable && failure.spec.manifest == component) {
      cured.push_back(failure);
    }
  }
  if (cured.empty()) return;
  active_.erase(std::remove_if(active_.begin(), active_.end(),
                               [&](const ActiveFailure& f) {
                                 return f.spec.soft_curable &&
                                        f.spec.manifest == component;
                               }),
                active_.end());
  total_cured_ += cured.size();
  for (const auto& failure : cured) {
    trace_cured(failure, now);
    for (const auto& listener : cure_listeners_) listener(failure, now);
  }
}

bool FailureBoard::manifests_at(const std::string& component) const {
  return std::any_of(active_.begin(), active_.end(), [&](const ActiveFailure& f) {
    return f.spec.manifest == component;
  });
}

std::vector<ActiveFailure> FailureBoard::active_at(const std::string& component) const {
  std::vector<ActiveFailure> out;
  for (const auto& failure : active_) {
    if (failure.spec.manifest == component) out.push_back(failure);
  }
  return out;
}

bool FailureBoard::clear(FailureId id) {
  const auto it = std::find_if(active_.begin(), active_.end(),
                               [id](const ActiveFailure& f) { return f.id == id; });
  if (it == active_.end()) return false;
  active_.erase(it);
  return true;
}

void FailureBoard::set_restart_faults(const std::string& component,
                                      RestartFaultSpec spec) {
  if (spec.active()) {
    restart_faults_[component] = spec;
  } else {
    restart_faults_.erase(component);
  }
}

const RestartFaultSpec& FailureBoard::restart_faults(
    const std::string& component) const {
  static const RestartFaultSpec kNone;
  const auto it = restart_faults_.find(component);
  return it != restart_faults_.end() ? it->second : kNone;
}

void FailureBoard::note_restart_hang(const std::string& component,
                                     util::TimePoint now) {
  ++restart_hangs_;
  obs::instant(now, "restart", "restart.hang", "board",
               {{"component", component}});
  obs::incr("restart.hangs");
}

void FailureBoard::note_restart_crash(const std::string& component,
                                      util::TimePoint now) {
  ++restart_crashes_;
  obs::instant(now, "restart", "restart.crash", "board",
               {{"component", component}});
  obs::incr("restart.crashes");
}

void FailureBoard::add_cure_listener(CureListener listener) {
  cure_listeners_.push_back(std::move(listener));
}

void FailureBoard::add_inject_listener(InjectListener listener) {
  inject_listeners_.push_back(std::move(listener));
}

}  // namespace mercury::core
