#include "bus/message_bus.h"

#include "util/log.h"

namespace mercury::bus {

using util::LogLevel;
using util::LogLine;

MessageBus::MessageBus(sim::Simulator& sim, BusConfig config)
    : sim_(sim), config_(config), rng_(sim.rng().fork("mbus")) {}

void MessageBus::attach(const std::string& name, Receiver receiver) {
  endpoints_[name] = std::move(receiver);
  restarting_.erase(name);  // back on the bus: no longer mid-restart
}

void MessageBus::note_restarting(const std::string& name, std::uint64_t epoch) {
  restarting_[name] = epoch;
}

bool MessageBus::restarting(const std::string& name) const {
  return restarting_.contains(name);
}

void MessageBus::set_touch_listener(TouchListener listener) {
  touch_listener_ = std::move(listener);
}

void MessageBus::detach(const std::string& name) { endpoints_.erase(name); }

bool MessageBus::attached(const std::string& name) const {
  return endpoints_.contains(name);
}

std::vector<std::string> MessageBus::endpoint_names() const {
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const auto& [name, receiver] : endpoints_) names.push_back(name);
  return names;
}

void MessageBus::send(const msg::Message& message) {
  ++stats_.sent;
  if (!online_) {
    ++stats_.dropped_bus_down;
    return;
  }
  const std::string wire = msg::encode(message);
  if (wire.size() > config_.max_wire_bytes) {
    ++stats_.dropped_oversize;
    LogLine(LogLevel::kWarn, sim_.now(), "mbus")
        << "dropping oversize message from " << message.from << " ("
        << wire.size() << " bytes)";
    return;
  }

  std::vector<std::string> targets;
  if (message.to == "*") {
    for (const auto& [name, receiver] : endpoints_) {
      if (name != message.from) targets.push_back(name);
    }
  } else {
    targets.push_back(message.to);
  }

  for (const auto& target : targets) {
    if (config_.loss_probability > 0.0 && rng_.chance(config_.loss_probability)) {
      ++stats_.dropped_lossy;
      continue;
    }
    const Duration latency =
        config_.latency +
        Duration::seconds(rng_.uniform(0.0, config_.latency_jitter.to_seconds()));
    const std::uint64_t epoch = epoch_;
    sim_.schedule_after(latency, "mbus.deliver:" + target,
                        [this, epoch, target, wire] { deliver(epoch, target, wire); });
  }
}

void MessageBus::deliver(std::uint64_t epoch, const std::string& to,
                         const std::string& wire) {
  if (!online_ || epoch != epoch_) {
    ++stats_.dropped_bus_down;
    return;
  }
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) {
    // Mid-restart endpoint (ISSUE 9): the process backend marked it at kill
    // time. With typed errors on, the sender gets a kNack carrying the
    // component and its failure epoch — a fast, actionable retry signal —
    // instead of the legacy silent drop. The touch listener fires either
    // way, so traffic-driven recovery sees the request even on legacy
    // configs.
    const auto mid_restart = restarting_.find(to);
    if (mid_restart != restarting_.end() &&
        (config_.typed_restart_errors || touch_listener_)) {
      auto original = msg::decode(wire);
      if (original.ok()) {
        const msg::Message& request = original.value();
        if (touch_listener_) touch_listener_(to, request.from);
        // Never answer a nack with a nack (no error-on-error loops), and
        // never answer our own error messages.
        if (config_.typed_restart_errors && request.kind != msg::Kind::kNack &&
            !request.from.empty() && request.from != "mbus") {
          ++stats_.rejected_restarting;
          msg::Message error = msg::make_nack(request, "mbus", "restarting");
          error.body.set_attr("component", to);
          error.body.set_attr("epoch", std::to_string(mid_restart->second));
          send(error);
          return;
        }
      }
    }
    ++stats_.dropped_no_endpoint;
    return;
  }
  auto decoded = msg::decode(wire);
  if (!decoded.ok()) {
    // Should be unreachable: we encoded it ourselves. Count as a drop rather
    // than crash the bus on a malformed frame.
    ++stats_.dropped_no_endpoint;
    LogLine(LogLevel::kError, sim_.now(), "mbus")
        << "undecodable frame: " << decoded.error().message();
    return;
  }
  ++stats_.delivered;
  // Copy the receiver: the callback may detach/re-attach endpoints.
  Receiver receiver = it->second;
  receiver(decoded.value());
}

void MessageBus::crash() {
  if (!online_) return;
  online_ = false;
  ++epoch_;  // voids in-flight deliveries
  endpoints_.clear();
  LogLine(LogLevel::kInfo, sim_.now(), "mbus") << "bus crashed";
}

void MessageBus::restart() {
  online_ = true;
  LogLine(LogLevel::kInfo, sim_.now(), "mbus") << "bus restarted";
}

}  // namespace mercury::bus
