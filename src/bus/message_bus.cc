#include "bus/message_bus.h"

#include <functional>
#include <string_view>

#include "util/log.h"

namespace mercury::bus {

using util::LogLevel;
using util::LogLine;

MessageBus::MessageBus(sim::Simulator& sim, BusConfig config)
    : sim_(sim), config_(config), rng_(sim.rng().fork("mbus")) {}

void MessageBus::attach(const std::string& name, Receiver receiver) {
  endpoints_.insert_or_assign(name, std::move(receiver));
  ++endpoints_version_;  // invalidate cached routes: re-register semantics
  restarting_.erase(name);  // back on the bus: no longer mid-restart
}

MessageBus::Receiver* MessageBus::find_receiver(const std::string& to) {
  RouteEntry& entry =
      route_cache_[std::hash<std::string_view>{}(to) & (kRouteCacheSize - 1)];
  if (entry.version == endpoints_version_ && entry.to == to) {
    return &endpoints_.at_index(entry.index).second;
  }
  const auto it = endpoints_.find(to);
  if (it == endpoints_.end()) return nullptr;
  entry.to = to;
  entry.index = static_cast<std::uint32_t>(endpoints_.index_of(it));
  entry.version = endpoints_version_;
  return &it->second;
}

void MessageBus::note_restarting(const std::string& name, std::uint64_t epoch) {
  restarting_.insert_or_assign(name, epoch);
}

bool MessageBus::restarting(const std::string& name) const {
  return restarting_.contains(name);
}

void MessageBus::set_touch_listener(TouchListener listener) {
  touch_listener_ = std::move(listener);
}

void MessageBus::detach(const std::string& name) {
  if (endpoints_.erase(name) > 0) ++endpoints_version_;
}

bool MessageBus::attached(const std::string& name) const {
  return endpoints_.contains(name);
}

std::vector<std::string> MessageBus::endpoint_names() const {
  std::vector<std::string> names;
  names.reserve(endpoints_.size());
  for (const auto& [name, receiver] : endpoints_) names.push_back(name);
  return names;
}

void MessageBus::send(const msg::Message& message) {
  ++stats_.sent;
  if (!online_) {
    ++stats_.dropped_bus_down;
    return;
  }
  const std::string wire = msg::encode(message);
  if (wire.size() > config_.max_wire_bytes) {
    ++stats_.dropped_oversize;
    LogLine(LogLevel::kWarn, sim_.now(), "mbus")
        << "dropping oversize message from " << message.from << " ("
        << wire.size() << " bytes)";
    return;
  }

  // Re-parse the frame once, up front: decode() is pure, so sharing one
  // decoded message across every delivery is indistinguishable from the old
  // per-delivery parse — and a broadcast no longer decodes the same bytes
  // once per target. Only data representable in the command language still
  // crosses the bus (the receiver sees the round-tripped message, not the
  // original).
  auto parsed = msg::decode(wire);
  if (!parsed.ok()) {
    // Should be unreachable: we encoded it ourselves. Count as a drop per
    // target rather than crash the bus on a malformed frame.
    if (message.to == "*") {
      for (const auto& [name, receiver] : endpoints_) {
        if (name != message.from) ++stats_.dropped_no_endpoint;
      }
    } else {
      ++stats_.dropped_no_endpoint;
    }
    LogLine(LogLevel::kError, sim_.now(), "mbus")
        << "undecodable frame: " << parsed.error().message();
    return;
  }
  const auto decoded =
      std::make_shared<const msg::Message>(std::move(parsed).value());

  if (message.to == "*") {
    // Scheduling deliveries never mutates the endpoint table, so broadcasts
    // iterate it directly (same order the old targets vector was built in).
    for (const auto& [name, receiver] : endpoints_) {
      if (name != message.from) dispatch(name, decoded);
    }
  } else {
    dispatch(message.to, decoded);
  }
}

void MessageBus::dispatch(const std::string& target,
                          const std::shared_ptr<const msg::Message>& decoded) {
  if (config_.loss_probability > 0.0 && rng_.chance(config_.loss_probability)) {
    ++stats_.dropped_lossy;
    return;
  }
  const Duration latency =
      config_.latency +
      Duration::seconds(rng_.uniform(0.0, config_.latency_jitter.to_seconds()));
  const std::uint64_t epoch = epoch_;
  if (target == decoded->to) {
    // Point-to-point: the decoded message already names the target — no
    // per-delivery string copy in the closure.
    sim_.schedule_after(latency, "mbus.deliver:" + target,
                        [this, epoch, decoded] { deliver(epoch, decoded->to, decoded); });
  } else {
    sim_.schedule_after(latency, "mbus.deliver:" + target,
                        [this, epoch, target, decoded] { deliver(epoch, target, decoded); });
  }
}

void MessageBus::deliver(std::uint64_t epoch, const std::string& to,
                         const std::shared_ptr<const msg::Message>& decoded) {
  if (!online_ || epoch != epoch_) {
    ++stats_.dropped_bus_down;
    return;
  }
  Receiver* receiver_slot = find_receiver(to);
  if (receiver_slot == nullptr) {
    // Mid-restart endpoint (ISSUE 9): the process backend marked it at kill
    // time. With typed errors on, the sender gets a kNack carrying the
    // component and its failure epoch — a fast, actionable retry signal —
    // instead of the legacy silent drop. The touch listener fires either
    // way, so traffic-driven recovery sees the request even on legacy
    // configs.
    const auto mid_restart = restarting_.find(to);
    if (mid_restart != restarting_.end() &&
        (config_.typed_restart_errors || touch_listener_)) {
      const msg::Message& request = *decoded;
      if (touch_listener_) touch_listener_(to, request.from);
      // Never answer a nack with a nack (no error-on-error loops), and
      // never answer our own error messages.
      if (config_.typed_restart_errors && request.kind != msg::Kind::kNack &&
          !request.from.empty() && request.from != "mbus") {
        ++stats_.rejected_restarting;
        msg::Message error = msg::make_nack(request, "mbus", "restarting");
        error.body.set_attr("component", to);
        error.body.set_attr("epoch", std::to_string(mid_restart->second));
        send(error);
        return;
      }
    }
    ++stats_.dropped_no_endpoint;
    return;
  }
  ++stats_.delivered;
  // Copy the receiver: the callback may detach/re-attach endpoints, which
  // moves flat-map slots out from under the pointer.
  Receiver receiver = *receiver_slot;
  receiver(*decoded);
}

void MessageBus::crash() {
  if (!online_) return;
  online_ = false;
  ++epoch_;  // voids in-flight deliveries
  endpoints_.clear();
  ++endpoints_version_;
  LogLine(LogLevel::kInfo, sim_.now(), "mbus") << "bus crashed";
}

void MessageBus::restart() {
  online_ = true;
  LogLine(LogLevel::kInfo, sim_.now(), "mbus") << "bus restarted";
}

}  // namespace mercury::bus
