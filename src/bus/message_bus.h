// mbus — the Mercury software message bus (paper §2.1).
//
// "Messages are exchanged over a TCP/IP-based software messaging bus."
// Components attach under a well-known name and receive XML command-language
// messages. Delivery is asynchronous with a small configurable latency.
//
// Failure semantics mirror the paper's mbus process:
//   * The bus itself can crash (fail-silent). While down, every message is
//     dropped — senders get no error, exactly like writes into a dead TCP
//     endpoint that hasn't RST yet.
//   * When the bus restarts, previously attached components must re-attach
//     (their Component base class does this automatically on reconnect).
//   * Messages to unattached or crashed destinations are silently dropped.
//
// The bus also exposes delivery/drop counters used by tests and by the
// health-beacon extension.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "msg/message.h"
#include "sim/simulator.h"
#include "util/flat_map.h"
#include "util/time.h"

namespace mercury::bus {

using util::Duration;

struct BusConfig {
  /// One-way delivery latency; jitter is uniform in [0, latency_jitter).
  Duration latency = Duration::millis(3.0);
  Duration latency_jitter = Duration::millis(2.0);
  /// Message size limit; oversized messages are dropped and counted.
  std::size_t max_wire_bytes = 64 * 1024;
  /// Independent per-delivery loss probability (a congested or flaky bus).
  /// Mercury's TCP bus is lossless in steady state (0.0), but the
  /// robustness ablation uses this to show why single-miss failure
  /// detection (the paper's choice) needs a reliable transport.
  double loss_probability = 0.0;
  /// Typed mid-restart errors (ISSUE 9): a message addressed to an endpoint
  /// that is detached *because its process is restarting* is answered with a
  /// kNack (reason "restarting", carrying the component name and its failure
  /// epoch) instead of being silently dropped. Lets clients retry fast —
  /// they can tell "mid-restart" from "never existed". Off by default so
  /// legacy traffic and drop counters stay byte-identical.
  bool typed_restart_errors = false;
};

struct BusStats {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t dropped_bus_down = 0;
  std::uint64_t dropped_no_endpoint = 0;
  std::uint64_t dropped_oversize = 0;
  std::uint64_t dropped_lossy = 0;
  /// Messages answered with a typed "restarting" nack instead of a silent
  /// drop (typed_restart_errors configs only).
  std::uint64_t rejected_restarting = 0;
};

class MessageBus {
 public:
  using Receiver = std::function<void(const msg::Message&)>;

  MessageBus(sim::Simulator& sim, BusConfig config);

  MessageBus(const MessageBus&) = delete;
  MessageBus& operator=(const MessageBus&) = delete;

  /// Attach a named endpoint. Re-attaching an existing name replaces the
  /// receiver (a restarted component takes over its old name).
  void attach(const std::string& name, Receiver receiver);
  void detach(const std::string& name);
  bool attached(const std::string& name) const;
  std::vector<std::string> endpoint_names() const;

  /// Route a message. `to == "*"` broadcasts to every endpoint except the
  /// sender. Messages are serialized to the wire format and re-parsed at
  /// delivery, so only data representable in the command language crosses
  /// the bus (and size limits apply to real encoded bytes).
  void send(const msg::Message& message);

  /// Crash the bus: drops all in-flight messages and everything sent while
  /// down. Endpoints remain registered (the TCP peers don't know yet).
  void crash();
  /// Restart the bus: comes back empty; endpoints must re-attach to be
  /// reachable again (mirrors reconnect-after-restart).
  void restart();
  bool online() const { return online_; }

  /// Mark `name` as detached-because-restarting (called by the process
  /// backend at kill time, with the restart attempt's failure epoch). The
  /// mark clears automatically when the endpoint re-attaches. While marked,
  /// deliveries to the missing endpoint fire the touch listener, and — with
  /// typed_restart_errors on — are answered with a "restarting" nack.
  void note_restarting(const std::string& name, std::uint64_t epoch);
  bool restarting(const std::string& name) const;

  /// Observer for traffic-driven recovery (ISSUE 9): fired when a message
  /// from `from` targets a mid-restart endpoint `to`. The harness uses it to
  /// promote lazily queued restarts when a client request first touches a
  /// down component.
  using TouchListener =
      std::function<void(const std::string& to, const std::string& from)>;
  void set_touch_listener(TouchListener listener);

  const BusStats& stats() const { return stats_; }

 private:
  /// Schedule one delivery of `decoded` to `target` (loss + latency applied).
  void dispatch(const std::string& target,
                const std::shared_ptr<const msg::Message>& decoded);
  /// `decoded` is the wire frame re-parsed through the command-language
  /// codec. decode() is pure, so it runs once at send time and the result is
  /// shared by every delivery of that frame (a broadcast used to re-parse
  /// the same bytes once per target); each receiver still sees exactly what
  /// a per-delivery parse would have produced.
  void deliver(std::uint64_t epoch, const std::string& to,
               const std::shared_ptr<const msg::Message>& decoded);
  /// Routing lookup through the route cache; nullptr when unattached. The
  /// returned pointer is valid only until the next endpoint mutation.
  Receiver* find_receiver(const std::string& to);

  sim::Simulator& sim_;
  BusConfig config_;
  util::Rng rng_;
  bool online_ = true;
  /// Incremented on crash; in-flight deliveries from an older epoch are void.
  std::uint64_t epoch_ = 0;
  /// Endpoint table: sorted flat map (same iteration order as the std::map
  /// it replaced, so broadcasts and endpoint_names() are unchanged), with a
  /// small direct-mapped route cache in front of the binary search. A
  /// sender's route to a target resolves through the cache on repeat sends;
  /// any (re)register — attach, detach, crash — bumps endpoints_version_,
  /// invalidating every cached route at once (a stale slot index must never
  /// deliver to a dead receiver).
  util::FlatMap<std::string, Receiver> endpoints_;
  std::uint64_t endpoints_version_ = 1;
  struct RouteEntry {
    std::string to;
    std::uint32_t index = 0;
    std::uint64_t version = 0;  // 0 = empty; live versions start at 1
  };
  static constexpr std::size_t kRouteCacheSize = 16;  // power of two
  std::array<RouteEntry, kRouteCacheSize> route_cache_;
  /// Endpoints currently detached because their process is restarting, with
  /// the failure epoch of the restart attempt (note_restarting / attach).
  util::FlatMap<std::string, std::uint64_t> restarting_;
  TouchListener touch_listener_;
  BusStats stats_;
};

}  // namespace mercury::bus
