// Dedicated FD<->REC channel (paper §2.2).
//
// "For improved isolation, FD and REC communicate over a separate dedicated
// TCP connection, not over mbus; mbus itself is monitored as well."
//
// A DedicatedLink is a reliable point-to-point pipe between exactly two
// named parties, independent of mbus, so failure detection keeps working
// while the bus is being restarted.
#pragma once

#include <functional>
#include <string>

#include "msg/message.h"
#include "sim/simulator.h"
#include "util/time.h"

namespace mercury::bus {

class DedicatedLink {
 public:
  using Receiver = std::function<void(const msg::Message&)>;

  DedicatedLink(sim::Simulator& sim, std::string end_a, std::string end_b,
                util::Duration latency = util::Duration::millis(1.0));

  DedicatedLink(const DedicatedLink&) = delete;
  DedicatedLink& operator=(const DedicatedLink&) = delete;

  /// Bind a receiver to one end; `name` must be one of the two parties.
  void bind(const std::string& name, Receiver receiver);
  void unbind(const std::string& name);

  /// Send from one party to the other. message.from must be a party; it is
  /// delivered to the opposite end if bound, else dropped.
  void send(const msg::Message& message);

  const std::string& end_a() const { return end_a_; }
  const std::string& end_b() const { return end_b_; }

 private:
  sim::Simulator& sim_;
  std::string end_a_;
  std::string end_b_;
  util::Duration latency_;
  Receiver receiver_a_;
  Receiver receiver_b_;
};

}  // namespace mercury::bus
