#include "bus/dedicated_link.h"

#include <cassert>

namespace mercury::bus {

DedicatedLink::DedicatedLink(sim::Simulator& sim, std::string end_a,
                             std::string end_b, util::Duration latency)
    : sim_(sim), end_a_(std::move(end_a)), end_b_(std::move(end_b)),
      latency_(latency) {
  assert(end_a_ != end_b_);
}

void DedicatedLink::bind(const std::string& name, Receiver receiver) {
  assert(name == end_a_ || name == end_b_);
  if (name == end_a_) {
    receiver_a_ = std::move(receiver);
  } else {
    receiver_b_ = std::move(receiver);
  }
}

void DedicatedLink::unbind(const std::string& name) {
  assert(name == end_a_ || name == end_b_);
  if (name == end_a_) {
    receiver_a_ = nullptr;
  } else {
    receiver_b_ = nullptr;
  }
}

void DedicatedLink::send(const msg::Message& message) {
  assert(message.from == end_a_ || message.from == end_b_);
  const bool to_b = message.from == end_a_;
  sim_.schedule_after(latency_, "link.deliver", [this, to_b, message] {
    const Receiver& receiver = to_b ? receiver_b_ : receiver_a_;
    if (receiver) receiver(message);
  });
}

}  // namespace mercury::bus
