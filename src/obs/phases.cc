#include "obs/phases.h"

#include <charconv>
#include <map>
#include <sstream>
#include <utility>

#include "util/stats.h"
#include "util/strings.h"

namespace mercury::obs {

namespace {

/// Key for "which run's which component": phases never match across runs.
using Key = std::pair<std::uint64_t, std::string>;

struct PendingAction {
  RecoveryPhases row;
};

/// Shared body of both recovery_phases overloads; `Range` is any forward
/// range of TraceEvent (flat vector or chunked EventBuffer).
template <typename Range>
std::vector<RecoveryPhases> recovery_phases_impl(const Range& events) {
  std::vector<RecoveryPhases> rows;
  // Latest unconsumed fault onset / failure report per (run, component).
  std::map<Key, double> manifest_at;
  std::map<Key, double> report_at;
  std::map<std::uint64_t, PendingAction> open_actions;  // by span id
  // Index into `rows` of the run's latest completed action.
  std::map<std::uint64_t, std::size_t> last_row_of_run;

  for (const TraceEvent& event : events) {
    if (event.category == "fault" && event.name == "fault.manifest") {
      manifest_at[{event.run, event.arg_or("manifest")}] = event.t;
      continue;
    }
    if (event.category == "sim" && event.name == "trial.recovered") {
      // The harness observed the station functionally ready again. The gap
      // between the restart action's end and this instant is post-restart
      // readiness work (e.g. the §4.3 ses/str resync) — part of the
      // recovery the paper measures, so it extends the last action's
      // execution phase.
      const auto it = last_row_of_run.find(event.run);
      if (it != last_row_of_run.end() &&
          event.t > rows[it->second].t_complete) {
        rows[it->second].t_complete = event.t;
      }
      continue;
    }
    if (event.category == "detect" && event.name == "fd.report") {
      report_at[{event.run, event.arg_or("component")}] = event.t;
      continue;
    }
    const bool is_action = event.category == "recover" &&
                           (event.name == "rec.restart" || event.name == "rec.soft");
    if (!is_action) continue;

    if (event.kind == EventKind::kBegin) {
      PendingAction action;
      RecoveryPhases& row = action.row;
      row.run = event.run;
      row.component = event.arg_or("component");
      row.cell = event.arg_or("cell");
      row.soft = event.name == "rec.soft";
      row.planned = event.arg_or("planned") == "1";
      // Checked parse: traces can come from files (jsonl round trips), so a
      // malformed escalation arg must degrade to 0, not whatever atoi
      // happens to return on garbage or out-of-range input.
      const std::string escalation = event.arg_or("escalation", "0");
      int level = 0;
      const auto [ptr, ec] = std::from_chars(
          escalation.data(), escalation.data() + escalation.size(), level);
      row.escalation_level =
          (ec == std::errc{} && ptr == escalation.data() + escalation.size())
              ? level
              : 0;
      row.t_action_begin = event.t;

      const Key key{event.run, row.component};
      const auto report = report_at.find(key);
      if (report != report_at.end() && report->second <= event.t) {
        row.t_report = report->second;
        report_at.erase(report);
      } else {
        // Planned rejuvenation (or a lost report): no detection phase.
        row.t_report = event.t;
      }
      const auto manifest = manifest_at.find(key);
      if (manifest != manifest_at.end() && manifest->second <= row.t_report &&
          !row.planned) {
        row.has_fault = true;
        row.t_fault = manifest->second;
        manifest_at.erase(manifest);
      }
      open_actions[event.span] = std::move(action);
    } else if (event.kind == EventKind::kEnd) {
      const auto it = open_actions.find(event.span);
      if (it == open_actions.end()) continue;
      it->second.row.t_complete = event.t;
      last_row_of_run[event.run] = rows.size();
      rows.push_back(std::move(it->second.row));
      open_actions.erase(it);
    }
  }
  return rows;
}

}  // namespace

std::vector<RecoveryPhases> recovery_phases(
    const std::vector<TraceEvent>& events) {
  return recovery_phases_impl(events);
}

std::vector<RecoveryPhases> recovery_phases(const EventBuffer& events) {
  return recovery_phases_impl(events);
}

std::string phase_table(const std::vector<RecoveryPhases>& rows) {
  struct Agg {
    util::SampleStats detection, decision, execution, end_to_end;
  };
  std::map<std::string, Agg> by_component;
  Agg total;
  for (const RecoveryPhases& row : rows) {
    for (Agg* agg : {&by_component[row.component], &total}) {
      agg->detection.add(row.detection());
      agg->decision.add(row.decision());
      agg->execution.add(row.execution());
      agg->end_to_end.add(row.end_to_end());
    }
  }

  std::ostringstream out;
  const auto line = [&](const std::string& name, const Agg& agg) {
    out << util::pad_right(name, 12) << util::pad_left(std::to_string(agg.end_to_end.count()), 6)
        << util::pad_left(util::format_fixed(agg.detection.mean(), 3), 10)
        << util::pad_left(util::format_fixed(agg.decision.mean(), 3), 10)
        << util::pad_left(util::format_fixed(agg.execution.mean(), 3), 10)
        << util::pad_left(util::format_fixed(agg.end_to_end.mean(), 3), 12)
        << util::pad_left(util::format_fixed(agg.end_to_end.percentile(95), 3), 10)
        << "\n";
  };
  out << util::pad_right("component", 12) << util::pad_left("n", 6)
      << util::pad_left("detect", 10) << util::pad_left("decide", 10)
      << util::pad_left("execute", 10) << util::pad_left("end-to-end", 12)
      << util::pad_left("p95", 10) << "\n";
  out << std::string(70, '-') << "\n";
  for (const auto& [component, agg] : by_component) line(component, agg);
  if (!rows.empty()) {
    out << std::string(70, '-') << "\n";
    line("(all)", total);
  }
  return out.str();
}

}  // namespace mercury::obs
