// Recovery-trace invariant checker.
//
// A trace is not just a debugging artifact here — it is the evidence the
// benches rest on. TraceChecker validates structural invariants of the
// recovery path over any event stream (live recorder or a re-read
// .trace.jsonl), so a bench can assert that the machinery it measured
// behaved legally, not merely that the aggregate numbers look plausible:
//
//   overlapping-restart  At most one in-flight restart span per component
//                        per run. The process manager's supersede semantics
//                        guarantee an epoch bump ends the stale span before
//                        the new one begins; two open spans mean two owners.
//   epoch-regression     Restart attempts of one component carry strictly
//                        increasing epochs within a run (supersede order is
//                        monotone; a regression means a stale attempt ran
//                        after its successor).
//   phase-sum            For a recovered harness trial, the trace-derived
//                        phase decomposition must account for the measured
//                        end-to-end recovery: the recovery chain spans
//                        [first fault.manifest, last action complete] and
//                        that interval equals the harness's reported
//                        recovery within tolerance; single-action trials
//                        additionally check detection+decision+execution
//                        against it directly (bench_table1's assertion,
//                        generalized).
//   lost-kill            Every harness trial (a run with trial.start) ends
//                        recovered or explicitly parked: the run contains
//                        trial.recovered, rec.parked, or rec.hard-failure —
//                        a kill may never just evaporate. In recovered runs
//                        every injected fault is also individually cured.
//   open-restart         A run that claims trial.recovered has no restart
//                        span still open at end of stream (a recovered
//                        station cannot have a startup in flight).
//   conflicting-restart  Two rec.restart action spans overlapping in time
//                        within a run must have disjoint restart groups.
//                        Cells in a restart tree are nested-or-disjoint, so
//                        a shared member means an ancestor/descendant pair
//                        restarted concurrently — exactly what the DAG
//                        scheduler (conflict queueing, absorb-on-escalation)
//                        must never allow. Sibling overlaps are legal.
//   phantom-goodput      A traffic.request span that ends served while a
//                        restart of its target component has been open since
//                        before the request began cannot be real goodput:
//                        the endpoint was down for the request's whole
//                        lifetime, so a served outcome means the workload
//                        accounting and the restart trace disagree. Exempt
//                        when the request's mode arg is "ondemand" — there a
//                        request legally touches a parked/lazy cell, promotes
//                        its restart, and is served by the revived endpoint
//                        inside the same span.
//
// Runs without trial.start (background injector campaigns, POSIX
// supervision) are exempt from the harness-trial invariants but still
// checked for overlap and epoch order.
//
// Used as a library assert by every bench (bench::TraceSession::finish())
// and as the backbone of tests/test_trace_checker.cc.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace mercury::obs {

struct CheckOptions {
  /// Relative tolerance for phase-sum checks (|err| / measured).
  double phase_tolerance = 0.01;
  /// Absolute slack floor, for near-zero recoveries.
  double phase_slack_seconds = 1e-6;
  /// Require every harness trial to end recovered-or-parked. Benches that
  /// deliberately drive trials into timeouts may turn this off.
  bool require_resolution = true;
};

struct TraceIssue {
  std::string invariant;  ///< "overlapping-restart" | "epoch-regression" |
                          ///< "phase-sum" | "lost-kill" | "open-restart" |
                          ///< "conflicting-restart" | "phantom-goodput"
  std::uint64_t run = 0;
  std::string component;
  double t = 0.0;  ///< event time anchoring the issue (seconds)
  std::string detail;
};

/// Validate `events` (in emission order, as recorded or re-read from
/// JSONL). Returns every violation found; empty means the trace is clean.
/// The EventBuffer overload checks a live recorder's chunked log in place.
std::vector<TraceIssue> check_trace(const std::vector<TraceEvent>& events,
                                    const CheckOptions& options = {});
std::vector<TraceIssue> check_trace(const EventBuffer& events,
                                    const CheckOptions& options = {});

/// One line per issue, for bench/test output.
std::string describe(const std::vector<TraceIssue>& issues);

}  // namespace mercury::obs
