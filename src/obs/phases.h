// Recovery phase analysis over a trace (see docs/TRACING.md §"Phases").
//
// Rebuilds the paper's timing decomposition from the emitted events:
//
//   recovery = detection  (fault.manifest  -> fd.report)
//            + decision   (fd.report      -> rec.restart/rec.soft begin;
//                          includes the oracle.choice and FD->REC link hop)
//            + execution  (action begin   -> action end, extended to the
//                          trial.recovered instant when the harness emits
//                          one: post-restart readiness work like the §4.3
//                          ses/str resync counts as execution)
//
// The three phases tile the interval from fault onset to functional
// readiness, so they sum to the end-to-end recovery time exactly (tested in
// tests/test_trace.cc). An escalation chain produces one row per recovery
// action; rows after the first have no fault.manifest of their own and
// anchor on the re-detection report instead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace mercury::obs {

struct RecoveryPhases {
  std::uint64_t run = 0;
  std::string component;  ///< reported component
  std::string cell;       ///< restarted cell label ("" for soft recoveries)
  bool soft = false;      ///< §7 soft-recovery action rather than a restart
  bool planned = false;   ///< proactive rejuvenation rather than reaction
  int escalation_level = 0;
  bool has_fault = false;  ///< a fault.manifest event anchors this chain

  // Timeline anchors, seconds. t_fault is meaningful only when has_fault.
  double t_fault = 0.0;
  double t_report = 0.0;
  double t_action_begin = 0.0;
  double t_complete = 0.0;

  /// fault.manifest -> fd.report; 0 when no fault event was traced.
  double detection() const { return has_fault ? t_report - t_fault : 0.0; }
  /// fd.report -> recovery-action begin (oracle decision + link latency).
  double decision() const { return t_action_begin - t_report; }
  /// Recovery-action begin -> end (the restart/soft-procedure itself).
  double execution() const { return t_complete - t_action_begin; }
  double end_to_end() const {
    return t_complete - (has_fault ? t_fault : t_report);
  }
};

/// Reconstruct per-recovery-action phase rows from an event stream (as
/// recorded, or as loaded back via read_jsonl). Events must be in emission
/// order. Actions still open at the end of the stream are omitted. The
/// EventBuffer overload analyzes a live recorder's chunked log in place.
std::vector<RecoveryPhases> recovery_phases(const std::vector<TraceEvent>& events);
std::vector<RecoveryPhases> recovery_phases(const EventBuffer& events);

/// Aggregate phase table (mean seconds per reported component plus a total
/// row), formatted like the benches' paper-vs-measured tables.
std::string phase_table(const std::vector<RecoveryPhases>& rows);

}  // namespace mercury::obs
