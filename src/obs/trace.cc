#include "obs/trace.h"

#include <cassert>
#include <charconv>
#include <cstdio>
#include <istream>
#include <ostream>
#include <sstream>

namespace mercury::obs {

namespace {

// Thread-local: parallel experiment trials each install a private recorder
// on their worker thread (src/exp/runner.cc); emit sites never race.
thread_local TraceRecorder* g_recorder = nullptr;

/// JSON string escaping for the export/import round trip. Event names and
/// args are ASCII in practice, but component labels flow through user code,
/// so escape defensively.
std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// Timestamps print with microsecond resolution; %.9g keeps round-trip
/// fidelity for the double seconds the recorder stores.
std::string json_number(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void write_args_object(std::ostream& out, const std::vector<TraceArg>& args) {
  out << '{';
  for (std::size_t i = 0; i < args.size(); ++i) {
    if (i > 0) out << ',';
    out << '"' << json_escape(args[i].key) << "\":\"" << json_escape(args[i].value)
        << '"';
  }
  out << '}';
}

}  // namespace

std::string_view to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kInstant: return "i";
    case EventKind::kBegin: return "B";
    case EventKind::kEnd: return "E";
    case EventKind::kCounter: return "C";
  }
  return "?";
}

std::string TraceEvent::arg_or(const std::string& key,
                               const std::string& fallback) const {
  for (const auto& arg : args) {
    if (arg.key == key) return arg.value;
  }
  return fallback;
}

// --- EventBuffer ----------------------------------------------------------

void EventBuffer::push_back(TraceEvent event) {
  if (chunks_.empty() || chunks_.back().events.size() >= kChunkCapacity) {
    Chunk chunk;
    chunk.start = size_;
    chunk.events.reserve(kChunkCapacity);
    chunks_.push_back(std::move(chunk));
  }
  chunks_.back().events.push_back(std::move(event));
  ++size_;
}

const TraceEvent& EventBuffer::operator[](std::size_t index) const {
  assert(index < size_);
  // Chunks are sorted by start index; splices leave irregular sizes, so
  // binary-search rather than divide by the chunk capacity.
  std::size_t lo = 0;
  std::size_t hi = chunks_.size();
  while (hi - lo > 1) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (chunks_[mid].start <= index) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return chunks_[lo].events[index - chunks_[lo].start];
}

void EventBuffer::clear() {
  chunks_.clear();
  size_ = 0;
}

std::vector<TraceEvent> EventBuffer::to_vector() const {
  std::vector<TraceEvent> out;
  out.reserve(size_);
  for (const TraceEvent& event : *this) out.push_back(event);
  return out;
}

void EventBuffer::rebase(std::uint64_t span_offset, std::uint64_t run_offset) {
  for (Chunk& chunk : chunks_) {
    for (TraceEvent& event : chunk.events) {
      if (event.span != 0) event.span += span_offset;
      event.run += run_offset;
    }
  }
}

void EventBuffer::splice_from(EventBuffer&& other) {
  chunks_.reserve(chunks_.size() + other.chunks_.size());
  for (Chunk& chunk : other.chunks_) {
    if (chunk.events.empty()) continue;  // iteration assumes non-empty chunks
    chunk.start = size_;
    size_ += chunk.events.size();
    chunks_.push_back(std::move(chunk));
  }
  other.clear();
}

EventBuffer::const_iterator::reference EventBuffer::const_iterator::operator*()
    const {
  return buffer_->chunks_[chunk_].events[pos_];
}

EventBuffer::const_iterator& EventBuffer::const_iterator::operator++() {
  if (++pos_ >= buffer_->chunks_[chunk_].events.size()) {
    ++chunk_;
    pos_ = 0;
  }
  return *this;
}

TraceRecorder::TraceRecorder(std::size_t max_events) : max_events_(max_events) {}

void TraceRecorder::push(TraceEvent event) {
  if (events_.size() >= max_events_) {
    ++dropped_;
    return;
  }
  events_.push_back(std::move(event));
}

void TraceRecorder::instant(double t, std::string category, std::string name,
                            std::string track, std::vector<TraceArg> args) {
  TraceEvent event;
  event.t = t;
  event.kind = EventKind::kInstant;
  event.category = std::move(category);
  event.name = std::move(name);
  event.track = std::move(track);
  event.run = run_;
  event.args = std::move(args);
  push(std::move(event));
}

std::uint64_t TraceRecorder::begin(double t, std::string category,
                                   std::string name, std::string track,
                                   std::vector<TraceArg> args) {
  const std::uint64_t id = next_span_++;
  open_spans_[id] = {category, name, track};
  TraceEvent event;
  event.t = t;
  event.kind = EventKind::kBegin;
  event.category = std::move(category);
  event.name = std::move(name);
  event.track = std::move(track);
  event.span = id;
  event.run = run_;
  event.args = std::move(args);
  push(std::move(event));
  return id;
}

void TraceRecorder::end(double t, std::uint64_t span,
                        std::vector<TraceArg> args) {
  const auto it = open_spans_.find(span);
  if (it == open_spans_.end()) return;  // never opened, or already closed
  TraceEvent event;
  event.t = t;
  event.kind = EventKind::kEnd;
  event.category = it->second[0];
  event.name = it->second[1];
  event.track = it->second[2];
  event.span = span;
  event.run = run_;
  event.args = std::move(args);
  open_spans_.erase(it);
  push(std::move(event));
}

void TraceRecorder::counter(double t, std::string name, double value,
                            std::string track) {
  TraceEvent event;
  event.t = t;
  event.kind = EventKind::kCounter;
  event.category = "metric";
  event.name = std::move(name);
  event.track = std::move(track);
  event.run = run_;
  event.args = {{"value", json_number(value)}};
  push(std::move(event));
}

void TraceRecorder::incr(const std::string& name, std::uint64_t delta) {
  counters_[name] += delta;
}

void TraceRecorder::observe(const std::string& name, double value) {
  samples_[name].add(value);
}

std::uint64_t TraceRecorder::count(const std::string& name) const {
  const auto it = counters_.find(name);
  return it != counters_.end() ? it->second : 0;
}

std::string TraceRecorder::metrics_summary() const {
  std::ostringstream out;
  if (!counters_.empty()) {
    out << "counters:\n";
    for (const auto& [name, value] : counters_) {
      out << "  " << name << " = " << value << "\n";
    }
  }
  if (!samples_.empty()) {
    out << "samples (n / mean / p50 / p95 / max, seconds):\n";
    for (const auto& [name, stats] : samples_) {
      out << "  " << name << " = " << stats.count() << " / "
          << json_number(stats.mean()) << " / " << json_number(stats.percentile(50))
          << " / " << json_number(stats.percentile(95)) << " / "
          << json_number(stats.max()) << "\n";
    }
  }
  if (dropped_ > 0) {
    out << "dropped events (over " << max_events_ << " cap): " << dropped_ << "\n";
  }
  return out.str();
}

void TraceRecorder::merge_from(const TraceRecorder& other) {
  const std::uint64_t span_offset = next_span_ - 1;
  const std::uint64_t run_offset = run_;
  for (const TraceEvent& event : other.events_) {
    TraceEvent copy = event;
    if (copy.span != 0) copy.span += span_offset;
    copy.run += run_offset;
    push(std::move(copy));
  }
  merge_metadata_from(other);
}

void TraceRecorder::merge_from(TraceRecorder&& other) {
  if (events_.size() + other.events_.size() <= max_events_) {
    other.events_.rebase(next_span_ - 1, run_);
    events_.splice_from(std::move(other.events_));
    merge_metadata_from(other);
    return;
  }
  // Near the cap the per-event push path must decide drops one by one, in
  // the same order the copying merge would — fall back to it.
  merge_from(static_cast<const TraceRecorder&>(other));
}

void TraceRecorder::merge_metadata_from(const TraceRecorder& other) {
  // Advance the counters as if this recorder had issued other's ids itself,
  // so a later merge (or live emission) continues the same numbering the
  // serial interleaving would have used.
  next_span_ += other.next_span_ - 1;
  run_ += other.run_;
  dropped_ += other.dropped_;
  for (const auto& [name, value] : other.counters_) counters_[name] += value;
  for (const auto& [name, stats] : other.samples_) {
    util::SampleStats& mine = samples_[name];
    for (const double value : stats.samples()) mine.add(value);
  }
}

void TraceRecorder::clear() {
  events_.clear();
  open_spans_.clear();
  counters_.clear();
  samples_.clear();
  next_span_ = 1;
  run_ = 0;
  dropped_ = 0;
}

namespace {

template <typename Range>
void write_jsonl_impl(const Range& events, std::ostream& out) {
  for (const TraceEvent& event : events) {
    out << "{\"t\":" << json_number(event.t) << ",\"ph\":\""
        << to_string(event.kind) << "\",\"cat\":\"" << json_escape(event.category)
        << "\",\"name\":\"" << json_escape(event.name) << "\",\"track\":\""
        << json_escape(event.track) << "\",\"span\":" << event.span
        << ",\"run\":" << event.run << ",\"args\":";
    write_args_object(out, event.args);
    out << "}\n";
  }
}

}  // namespace

void write_jsonl(const std::vector<TraceEvent>& events, std::ostream& out) {
  write_jsonl_impl(events, out);
}

void write_jsonl(const EventBuffer& events, std::ostream& out) {
  write_jsonl_impl(events, out);
}

void TraceRecorder::write_jsonl(std::ostream& out) const {
  write_jsonl_impl(events_, out);
}

void TraceRecorder::write_chrome_trace(std::ostream& out) const {
  // Tracks map to Chrome thread ids within the run's process; name them via
  // metadata events so the viewer shows "fd", "rec", ... instead of numbers.
  std::map<std::pair<std::uint64_t, std::string>, int> tids;
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto comma = [&] {
    if (!first) out << ",\n";
    first = false;
  };
  for (const TraceEvent& event : events_) {
    const auto key = std::make_pair(event.run, event.track);
    auto it = tids.find(key);
    if (it == tids.end()) {
      const int tid = static_cast<int>(tids.size()) + 1;
      it = tids.emplace(key, tid).first;
      comma();
      out << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":" << event.run
          << ",\"tid\":" << tid << ",\"args\":{\"name\":\""
          << json_escape(event.track) << "\"}}";
      comma();
      out << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":" << event.run
          << ",\"tid\":" << tid << ",\"args\":{\"name\":\"run " << event.run
          << "\"}}";
    }
    comma();
    out << "{\"ph\":\"" << to_string(event.kind) << "\",\"ts\":"
        << json_number(event.t * 1e6) << ",\"pid\":" << event.run
        << ",\"tid\":" << it->second << ",\"cat\":\"" << json_escape(event.category)
        << "\",\"name\":\"" << json_escape(event.name) << "\"";
    if (event.kind == EventKind::kInstant) out << ",\"s\":\"t\"";
    if (event.kind == EventKind::kCounter) {
      // Counter events carry their value in args; Chrome wants it numeric.
      out << ",\"args\":{\"value\":" << event.arg_or("value", "0") << "}";
    } else {
      out << ",\"args\":";
      std::ostringstream args;
      write_args_object(args, event.args);
      out << args.str();
    }
    out << "}";
  }
  out << "]}\n";
}

// --- JSONL import ---------------------------------------------------------
//
// A hand-rolled parser for exactly the flat object write_jsonl emits (string
// and integer values, plus the one-level "args" object). Not a general JSON
// parser; docs/TRACING.md pins the schema.

namespace {

struct Cursor {
  std::string_view s;
  std::size_t i = 0;

  bool eat(char c) {
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  void skip_ws() {
    while (i < s.size() && (s[i] == ' ' || s[i] == '\t')) ++i;
  }
};

bool parse_string(Cursor& c, std::string& out) {
  if (!c.eat('"')) return false;
  out.clear();
  while (c.i < c.s.size()) {
    const char ch = c.s[c.i++];
    if (ch == '"') return true;
    if (ch == '\\') {
      if (c.i >= c.s.size()) return false;
      const char esc = c.s[c.i++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // Checked hex parse: a malformed escape fails the line instead of
          // throwing out of the reader (corrupted trace files are routine).
          if (c.i + 4 > c.s.size()) return false;
          unsigned code = 0;
          for (std::size_t k = 0; k < 4; ++k) {
            const char h = c.s[c.i + k];
            unsigned digit = 0;
            if (h >= '0' && h <= '9') digit = static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') digit = static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') digit = static_cast<unsigned>(h - 'A' + 10);
            else return false;
            code = code * 16 + digit;
          }
          c.i += 4;
          // write_jsonl only emits \u00XX (control bytes), but accept any
          // BMP code point and re-encode as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    } else {
      out += ch;
    }
  }
  return false;
}

bool parse_number(Cursor& c, std::string& out) {
  out.clear();
  while (c.i < c.s.size()) {
    const char ch = c.s[c.i];
    if ((ch >= '0' && ch <= '9') || ch == '-' || ch == '+' || ch == '.' ||
        ch == 'e' || ch == 'E') {
      out += ch;
      ++c.i;
    } else {
      break;
    }
  }
  return !out.empty();
}

// Checked numeric parses: corrupted lines carry tokens like "-", ".", "e",
// or out-of-range digit runs, all of which parse_number happily collects.
// std::stod/std::stoull would throw on them and kill the reader; from_chars
// reports failure and the line is skipped.
bool parse_double_checked(std::string_view text, double& out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_u64_checked(std::string_view text, std::uint64_t& out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_args(Cursor& c, std::vector<TraceArg>& out) {
  if (!c.eat('{')) return false;
  c.skip_ws();
  if (c.eat('}')) return true;
  while (true) {
    TraceArg arg;
    if (!parse_string(c, arg.key)) return false;
    if (!c.eat(':')) return false;
    if (!parse_string(c, arg.value)) return false;
    out.push_back(std::move(arg));
    if (c.eat('}')) return true;
    if (!c.eat(',')) return false;
  }
}

bool parse_event(std::string_view line, TraceEvent& event) {
  Cursor c{line};
  if (!c.eat('{')) return false;
  while (true) {
    c.skip_ws();
    std::string key;
    if (!parse_string(c, key)) return false;
    if (!c.eat(':')) return false;
    if (key == "args") {
      if (!parse_args(c, event.args)) return false;
    } else if (key == "ph") {
      std::string ph;
      if (!parse_string(c, ph)) return false;
      if (ph == "i") event.kind = EventKind::kInstant;
      else if (ph == "B") event.kind = EventKind::kBegin;
      else if (ph == "E") event.kind = EventKind::kEnd;
      else if (ph == "C") event.kind = EventKind::kCounter;
      else return false;
    } else if (key == "cat" || key == "name" || key == "track") {
      std::string value;
      if (!parse_string(c, value)) return false;
      if (key == "cat") event.category = std::move(value);
      else if (key == "name") event.name = std::move(value);
      else event.track = std::move(value);
    } else if (key == "t" || key == "span" || key == "run") {
      std::string num;
      if (!parse_number(c, num)) return false;
      if (key == "t") {
        if (!parse_double_checked(num, event.t)) return false;
      } else if (key == "span") {
        if (!parse_u64_checked(num, event.span)) return false;
      } else {
        if (!parse_u64_checked(num, event.run)) return false;
      }
    } else {
      return false;  // unknown field: not our schema
    }
    if (c.eat('}')) return true;
    if (!c.eat(',')) return false;
  }
}

}  // namespace

std::vector<TraceEvent> read_jsonl(std::istream& in) {
  std::vector<TraceEvent> events;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    TraceEvent event;
    if (parse_event(line, event)) events.push_back(std::move(event));
  }
  return events;
}

// --- Process-wide recorder ------------------------------------------------

TraceRecorder* recorder() { return g_recorder; }

TraceRecorder* set_recorder(TraceRecorder* rec) {
  TraceRecorder* previous = g_recorder;
  g_recorder = rec;
  return previous;
}

void instant(util::TimePoint t, std::string category, std::string name,
             std::string track, std::vector<TraceArg> args) {
  if (g_recorder == nullptr) return;
  g_recorder->instant(t.to_seconds(), std::move(category), std::move(name),
                      std::move(track), std::move(args));
}

std::uint64_t begin_span(util::TimePoint t, std::string category,
                         std::string name, std::string track,
                         std::vector<TraceArg> args) {
  if (g_recorder == nullptr) return 0;
  return g_recorder->begin(t.to_seconds(), std::move(category), std::move(name),
                           std::move(track), std::move(args));
}

void end_span(util::TimePoint t, std::uint64_t span,
              std::vector<TraceArg> args) {
  if (g_recorder == nullptr || span == 0) return;
  g_recorder->end(t.to_seconds(), span, std::move(args));
}

void incr(const std::string& name, std::uint64_t delta) {
  if (g_recorder == nullptr) return;
  g_recorder->incr(name, delta);
}

void observe(const std::string& name, double value) {
  if (g_recorder == nullptr) return;
  g_recorder->observe(name, value);
}

void next_run() {
  if (g_recorder == nullptr) return;
  g_recorder->next_run();
}

}  // namespace mercury::obs
