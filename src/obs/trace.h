// Recovery-path tracing & metrics (schema documented in docs/TRACING.md).
//
// The paper's contribution is a timing argument: recovery time = detection
// latency + restart-policy decision + per-component restart durations. The
// benches report end-to-end numbers; this subsystem records *where inside a
// recovery the time went*. Every stage of the pipeline — fault manifestation,
// detector suspicion/report, oracle decision, recoverer action, per-component
// restart — emits structured events into one TraceRecorder, from which
// exporters produce JSONL and Chrome trace-event files and the phase analysis
// (obs/phases.h) rebuilds per-recovery breakdowns.
//
// Design constraints:
//   * Emitters timestamp events themselves (virtual simulation time or wall
//     time), so one recorder serves both the simulator and POSIX backends.
//   * Instrumentation is a thread-locally installable pointer (like
//     util::Logger, but per thread): with no recorder installed every emit
//     site is a single pointer compare. Each simulation runs single-threaded
//     on its own thread; the parallel experiment runner (src/exp) installs a
//     private recorder per trial and merges the buffers afterwards, so no
//     recorder instance is ever shared across threads.
//   * Span begin/end pairing is by id, so overlapping recoveries (escalation
//     chains, concurrent group members) nest correctly.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "util/stats.h"
#include "util/time.h"

namespace mercury::obs {

/// Event kinds, mirroring the Chrome trace-event phases we export to.
enum class EventKind {
  kInstant,  ///< point event ("ph":"i")
  kBegin,    ///< span open ("ph":"B"); paired with kEnd by `span`
  kEnd,      ///< span close ("ph":"E")
  kCounter,  ///< sampled numeric value ("ph":"C")
};

std::string_view to_string(EventKind kind);

/// One key/value annotation. Values are strings; numeric args are formatted
/// by the emitter (the schema in docs/TRACING.md says which keys are numeric).
struct TraceArg {
  std::string key;
  std::string value;
};

struct TraceEvent {
  double t = 0.0;  ///< seconds since run start (virtual or wall clock)
  EventKind kind = EventKind::kInstant;
  std::string category;  ///< pipeline stage: fault|detect|oracle|recover|restart|proc|tree|sim
  std::string name;      ///< event name, e.g. "fd.report", "restart:ses"
  std::string track;     ///< emitting subsystem: "board", "fd", "rec", "pm", "posix", ...
  std::uint64_t span = 0;  ///< nonzero pairs kBegin/kEnd
  std::uint64_t run = 0;   ///< trial index (TraceRecorder::next_run)
  std::vector<TraceArg> args;

  /// Value of an arg, or "" if absent.
  std::string arg_or(const std::string& key, const std::string& fallback = "") const;
};

/// Chunked append-only event storage (hot-path pass, ISSUE 10). A flat
/// std::vector<TraceEvent> re-moves every stored event (strings, arg
/// vectors) each time it doubles; chunking appends into fixed-capacity
/// blocks, so a recorded event is never moved again. Merging one buffer
/// into another (the parallel runner joining per-trial recorders) splices
/// whole chunks instead of copying events. Iteration order is emission
/// order, exactly like the vector it replaces.
class EventBuffer {
 public:
  /// Events per chunk. 4096 events ≈ a few hundred KB per block: big enough
  /// to amortize the allocation, small enough that short traces stay cheap.
  static constexpr std::size_t kChunkCapacity = 4096;

  void push_back(TraceEvent event);
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  /// Random access (tests, spot checks). O(log #chunks).
  const TraceEvent& operator[](std::size_t index) const;
  void clear();

  /// Flat copy, for consumers that outlive the buffer (TracedTrial).
  std::vector<TraceEvent> to_vector() const;

  /// Add `span_offset` to every nonzero span id and `run_offset` to every
  /// run index, in place (the merge rebase — integers only, no copies).
  void rebase(std::uint64_t span_offset, std::uint64_t run_offset);

  /// Steal every event of `other`, appending in order. Chunk splice: O(#chunks
  /// of other), no per-event work. `other` is left empty.
  void splice_from(EventBuffer&& other);

  /// Forward iteration in emission order (range-for compatible).
  class const_iterator {
   public:
    using value_type = TraceEvent;
    using reference = const TraceEvent&;

    reference operator*() const;
    const TraceEvent* operator->() const { return &**this; }
    const_iterator& operator++();
    bool operator==(const const_iterator& other) const {
      return chunk_ == other.chunk_ && pos_ == other.pos_;
    }
    bool operator!=(const const_iterator& other) const { return !(*this == other); }

   private:
    friend class EventBuffer;
    const_iterator(const EventBuffer* buffer, std::size_t chunk, std::size_t pos)
        : buffer_(buffer), chunk_(chunk), pos_(pos) {}
    const EventBuffer* buffer_ = nullptr;
    std::size_t chunk_ = 0;
    std::size_t pos_ = 0;
  };
  const_iterator begin() const { return const_iterator{this, 0, 0}; }
  const_iterator end() const { return const_iterator{this, chunks_.size(), 0}; }

 private:
  struct Chunk {
    std::uint64_t start = 0;  ///< global index of the chunk's first event
    std::vector<TraceEvent> events;
  };

  std::vector<Chunk> chunks_;
  std::size_t size_ = 0;
};

/// Append-only event log plus aggregate counters and sample sets.
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t max_events = kDefaultMaxEvents);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // --- Emission ----------------------------------------------------------
  void instant(double t, std::string category, std::string name,
               std::string track, std::vector<TraceArg> args = {});
  /// Open a span; returns its id (0 is never a valid span id).
  std::uint64_t begin(double t, std::string category, std::string name,
                      std::string track, std::vector<TraceArg> args = {});
  /// Close a span opened by begin(); category/name/track are replayed from
  /// the matching begin. Unknown ids are dropped (the begin may have been
  /// evicted by the event cap).
  void end(double t, std::uint64_t span, std::vector<TraceArg> args = {});
  void counter(double t, std::string name, double value, std::string track);

  // --- Aggregate metrics -------------------------------------------------
  void incr(const std::string& name, std::uint64_t delta = 1);
  void observe(const std::string& name, double value);
  std::uint64_t count(const std::string& name) const;
  const std::map<std::string, std::uint64_t>& counters() const { return counters_; }
  const std::map<std::string, util::SampleStats>& samples() const { return samples_; }
  /// Human-readable dump of all counters and sample percentiles.
  std::string metrics_summary() const;

  // --- Run separation ----------------------------------------------------
  /// Start a new run (trial); subsequent events carry the new run index.
  /// Runs become separate process tracks in the Chrome trace export.
  void next_run() { ++run_; }
  std::uint64_t run() const { return run_; }

  // --- Access ------------------------------------------------------------
  const EventBuffer& events() const { return events_; }
  std::uint64_t dropped() const { return dropped_; }
  void clear();

  /// Append another recorder's events, counters, samples and drop count,
  /// rebasing its run indices and span ids past everything this recorder
  /// has issued — exactly the numbering a serial interleaving (this
  /// recorder recording `other`'s trials after its own) would have
  /// produced. Merging per-trial recorders in trial order therefore yields
  /// a byte-identical export regardless of how many threads recorded them
  /// (the parallel runner's determinism contract, src/exp/runner.h).
  void merge_from(const TraceRecorder& other);
  /// Destructive merge: same semantics and resulting bytes, but when the
  /// events fit under the cap they are rebased in place and spliced over
  /// chunk-wise — no per-event copies. The parallel runner uses this on its
  /// per-trial recorders, which are dead after the merge anyway.
  void merge_from(TraceRecorder&& other);

  /// Per-event simulator tracing ("sim" category) is opt-in: a busy run
  /// fires millions of kernel events and would swamp the recovery signal.
  void set_sim_events(bool enabled) { sim_events_ = enabled; }
  bool sim_events() const { return sim_events_; }

  // --- Export (formats specified in docs/TRACING.md) ---------------------
  /// One JSON object per line.
  void write_jsonl(std::ostream& out) const;
  /// Chrome trace-event JSON (load in chrome://tracing or ui.perfetto.dev).
  void write_chrome_trace(std::ostream& out) const;

  static constexpr std::size_t kDefaultMaxEvents = 4'000'000;

 private:
  void push(TraceEvent event);

  /// Merge bookkeeping shared by both merge_from overloads (span/run
  /// counters, drop counts, aggregate counters and samples).
  void merge_metadata_from(const TraceRecorder& other);

  std::size_t max_events_;
  bool sim_events_ = false;
  std::uint64_t next_span_ = 1;
  std::uint64_t run_ = 0;
  std::uint64_t dropped_ = 0;
  EventBuffer events_;
  /// Open spans: id -> (category, name, track), replayed into the end event.
  std::map<std::uint64_t, std::array<std::string, 3>> open_spans_;
  std::map<std::string, std::uint64_t> counters_;
  std::map<std::string, util::SampleStats> samples_;
};

/// Serialize an event list in the JSONL schema (one object per line);
/// TraceRecorder::write_jsonl delegates here. Useful for event lists that
/// no longer live in a recorder (run_trial_traced captures, checker tests).
void write_jsonl(const std::vector<TraceEvent>& events, std::ostream& out);
void write_jsonl(const EventBuffer& events, std::ostream& out);

/// Parse events back from the JSONL export (the subset write_jsonl emits).
/// Malformed lines are skipped. Round-trip property: write_jsonl then
/// read_jsonl reproduces the event list exactly.
std::vector<TraceEvent> read_jsonl(std::istream& in);

// --- Thread-local recorder ------------------------------------------------
// Instrumented code calls the free functions below; they no-op (fast) while
// no recorder is installed. TimePoint overloads serve simulation code.
// Installation is per thread: a recorder installed on the main thread is
// invisible to worker threads (each experiment-runner trial installs its
// own), so a recorder never sees concurrent emitters.

/// Recorder installed on the calling thread, or nullptr.
TraceRecorder* recorder();
/// Install (or, with nullptr, remove) the calling thread's recorder.
/// Returns the previously installed recorder.
TraceRecorder* set_recorder(TraceRecorder* rec);

inline bool enabled() { return recorder() != nullptr; }

void instant(util::TimePoint t, std::string category, std::string name,
             std::string track, std::vector<TraceArg> args = {});
std::uint64_t begin_span(util::TimePoint t, std::string category,
                         std::string name, std::string track,
                         std::vector<TraceArg> args = {});
void end_span(util::TimePoint t, std::uint64_t span,
              std::vector<TraceArg> args = {});
void incr(const std::string& name, std::uint64_t delta = 1);
void observe(const std::string& name, double value);
void next_run();

/// RAII install/restore, for benches and tests.
class ScopedRecorder {
 public:
  explicit ScopedRecorder(TraceRecorder& rec) : previous_(set_recorder(&rec)) {}
  ~ScopedRecorder() { set_recorder(previous_); }
  ScopedRecorder(const ScopedRecorder&) = delete;
  ScopedRecorder& operator=(const ScopedRecorder&) = delete;

 private:
  TraceRecorder* previous_;
};

}  // namespace mercury::obs
