#include "obs/trace_check.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <map>
#include <optional>
#include <set>
#include <sstream>

#include "obs/phases.h"
#include "util/strings.h"

namespace mercury::obs {

namespace {

bool parse_double(const std::string& text, double& out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

bool parse_u64(const std::string& text, std::uint64_t& out) {
  const char* end = text.data() + text.size();
  const auto [ptr, ec] = std::from_chars(text.data(), end, out);
  return ec == std::errc{} && ptr == end;
}

/// Component of a process-manager restart span ("restart:<name>").
std::string restart_component(const TraceEvent& event) {
  const std::string from_arg = event.arg_or("component");
  if (!from_arg.empty()) return from_arg;
  constexpr std::string_view kPrefix = "restart:";
  if (event.name.size() > kPrefix.size() &&
      std::string_view(event.name).substr(0, kPrefix.size()) == kPrefix) {
    return event.name.substr(kPrefix.size());
  }
  return event.name;
}

bool is_restart_span_begin(const TraceEvent& event) {
  return event.kind == EventKind::kBegin && event.category == "restart" &&
         event.name.rfind("restart:", 0) == 0;
}

/// A recoverer action span ("rec.restart", sim and POSIX alike): one restart
/// of one cell's whole group, carrying the group membership as an arg.
bool is_action_span_begin(const TraceEvent& event) {
  return event.kind == EventKind::kBegin && event.category == "recover" &&
         event.name == "rec.restart";
}

/// One open rec.restart action span, for the conflicting-restart check.
struct OpenAction {
  std::uint64_t run = 0;
  std::string cell;
  std::vector<std::string> group;  // sorted member components
};

/// One open traffic.request span, for the phantom-goodput check.
struct OpenRequest {
  std::uint64_t run = 0;
  std::string target;
  std::string mode;
  double begin_t = 0.0;
};

bool is_request_span_begin(const TraceEvent& event) {
  return event.kind == EventKind::kBegin && event.category == "traffic" &&
         event.name == "traffic.request";
}

bool groups_intersect(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return false;
}

/// Accumulated facts about one run (trial), filled in stream order.
struct RunFacts {
  bool has_trial_start = false;
  bool has_recovered = false;
  bool has_parked = false;
  bool has_hard_failure = false;
  double recovered_t = 0.0;
  std::optional<double> reported_recovery;  // trial.recovered "recovery" arg
  std::optional<double> first_manifest_t;
  /// Outstanding fault ids -> (manifest component, onset t); erased on cure.
  std::map<std::uint64_t, std::pair<std::string, double>> open_faults;
};

/// Shared body of both check_trace overloads; `Range` is any forward range
/// of TraceEvent (flat vector or chunked EventBuffer).
template <typename Range>
std::vector<TraceIssue> check_trace_impl(const Range& events,
                                         const CheckOptions& options) {
  std::vector<TraceIssue> issues;
  const auto flag = [&](std::string invariant, std::uint64_t run,
                        std::string component, double t, std::string detail) {
    issues.push_back(TraceIssue{std::move(invariant), run, std::move(component),
                                t, std::move(detail)});
  };

  using Key = std::pair<std::uint64_t, std::string>;  // (run, component)
  /// Open restart span per component: span id -> key, plus reverse map.
  std::map<std::uint64_t, Key> span_owner;
  std::map<Key, std::uint64_t> open_restart;  // key -> open span id
  std::map<Key, double> open_restart_t;       // key -> begin time of that span
  std::map<Key, std::uint64_t> last_epoch;
  /// Open traffic.request spans (span id -> target + mode + begin time), for
  /// the phantom-goodput overlap check.
  std::map<std::uint64_t, OpenRequest> open_requests;
  /// Open rec.restart action spans (span id -> cell + group), for the
  /// conflicting-restart overlap check.
  std::map<std::uint64_t, OpenAction> open_actions;
  std::map<std::uint64_t, RunFacts> runs;

  for (const TraceEvent& event : events) {
    RunFacts& facts = runs[event.run];

    if (event.category == "sim" && event.name == "trial.start") {
      facts.has_trial_start = true;
    } else if (event.category == "sim" && event.name == "trial.recovered") {
      facts.has_recovered = true;
      facts.recovered_t = event.t;
      double recovery = 0.0;
      if (parse_double(event.arg_or("recovery"), recovery)) {
        facts.reported_recovery = recovery;
      }
    } else if (event.category == "fault" && event.name == "fault.manifest") {
      if (!facts.first_manifest_t.has_value()) facts.first_manifest_t = event.t;
      std::uint64_t id = 0;
      if (parse_u64(event.arg_or("id"), id)) {
        facts.open_faults[id] = {event.arg_or("manifest"), event.t};
      }
    } else if (event.category == "fault" && event.name == "fault.cured") {
      std::uint64_t id = 0;
      if (parse_u64(event.arg_or("id"), id)) facts.open_faults.erase(id);
    } else if (event.category == "recover" && event.name == "rec.parked") {
      facts.has_parked = true;
    } else if (event.category == "recover" &&
               event.name == "rec.hard-failure") {
      facts.has_hard_failure = true;
    }

    if (is_action_span_begin(event)) {
      // Conflicting-restart: two rec.restart actions may overlap in time
      // only when their restart groups are disjoint — i.e. their cells are
      // tree-siblings. An overlap with a shared member means an
      // ancestor/descendant pair restarted concurrently, which the DAG
      // scheduler (absorb-on-escalation, conflict queueing) must prevent.
      OpenAction action;
      action.run = event.run;
      action.cell = event.arg_or("cell");
      action.group = util::split(event.arg_or("group"), ',');
      std::sort(action.group.begin(), action.group.end());
      for (const auto& [span, other] : open_actions) {
        if (other.run != event.run) continue;
        if (groups_intersect(action.group, other.group)) {
          flag("conflicting-restart", event.run, event.arg_or("component"),
               event.t,
               "restart of cell " + action.cell + " begins while span " +
                   std::to_string(span) + " (cell " + other.cell +
                   ") holds an overlapping group");
        }
      }
      open_actions[event.span] = std::move(action);
    }

    if (is_request_span_begin(event)) {
      OpenRequest request;
      request.run = event.run;
      request.target = event.arg_or("target");
      request.mode = event.arg_or("mode");
      request.begin_t = event.t;
      open_requests[event.span] = std::move(request);
    }

    if (is_restart_span_begin(event)) {
      const Key key{event.run, restart_component(event)};

      const auto open = open_restart.find(key);
      if (open != open_restart.end()) {
        flag("overlapping-restart", event.run, key.second, event.t,
             "restart begins while span " + std::to_string(open->second) +
                 " of the same component is still in flight");
      }
      open_restart[key] = event.span;
      open_restart_t[key] = event.t;
      span_owner[event.span] = key;

      std::uint64_t epoch = 0;
      if (parse_u64(event.arg_or("epoch"), epoch)) {
        const auto previous = last_epoch.find(key);
        if (previous != last_epoch.end() && epoch <= previous->second) {
          flag("epoch-regression", event.run, key.second, event.t,
               "attempt epoch " + std::to_string(epoch) +
                   " not above previous " + std::to_string(previous->second));
        }
        last_epoch[key] = epoch;
      }
    } else if (event.kind == EventKind::kEnd) {
      open_actions.erase(event.span);
      const auto request = open_requests.find(event.span);
      if (request != open_requests.end()) {
        // Phantom-goodput: a request served while its target's restart has
        // been in flight since before the request began never reached a live
        // endpoint — unless on-demand mode, where the request itself revives
        // the target and is answered inside the same span.
        if (event.arg_or("outcome") == "served" &&
            request->second.mode != "ondemand") {
          const Key key{request->second.run, request->second.target};
          const auto open = open_restart.find(key);
          if (open != open_restart.end()) {
            const auto begun = open_restart_t.find(key);
            if (begun != open_restart_t.end() &&
                begun->second <= request->second.begin_t) {
              flag("phantom-goodput", request->second.run,
                   request->second.target, event.t,
                   "request served although restart span " +
                       std::to_string(open->second) +
                       " of its target opened at " +
                       util::format_fixed(begun->second, 6) +
                       " s, before the request began at " +
                       util::format_fixed(request->second.begin_t, 6) + " s");
            }
          }
        }
        open_requests.erase(request);
      }
      const auto owner = span_owner.find(event.span);
      if (owner != span_owner.end()) {
        const auto open = open_restart.find(owner->second);
        if (open != open_restart.end() && open->second == event.span) {
          open_restart.erase(open);
          open_restart_t.erase(owner->second);
        }
        span_owner.erase(owner);
      }
    }
  }

  // Restart spans still open at end of stream are legal only in runs that
  // did not recover (a hung startup under a parked chain stays open).
  for (const auto& [key, span] : open_restart) {
    const auto it = runs.find(key.first);
    if (it != runs.end() && it->second.has_recovered) {
      flag("open-restart", key.first, key.second, 0.0,
           "span " + std::to_string(span) +
               " still open although the trial recovered");
    }
  }

  // Harness-trial accounting: every kill resolves, and for recovered runs
  // the phase decomposition accounts for the measured recovery time.
  std::map<std::uint64_t, std::vector<const RecoveryPhases*>> rows_by_run;
  const std::vector<RecoveryPhases> rows = recovery_phases(events);
  for (const RecoveryPhases& row : rows) rows_by_run[row.run].push_back(&row);

  for (const auto& [run, facts] : runs) {
    if (!facts.has_trial_start) continue;

    const bool resolved =
        facts.has_recovered || facts.has_parked || facts.has_hard_failure;
    if (!resolved && facts.first_manifest_t.has_value() &&
        options.require_resolution) {
      flag("lost-kill", run, runs.at(run).open_faults.empty()
                                 ? std::string()
                                 : runs.at(run).open_faults.begin()->second.first,
           *facts.first_manifest_t,
           "trial neither recovered nor parked by end of trace");
    }
    if (facts.has_recovered && !facts.has_parked && !facts.has_hard_failure) {
      for (const auto& [id, fault] : facts.open_faults) {
        flag("lost-kill", run, fault.first, fault.second,
             "fault id " + std::to_string(id) +
                 " never cured although the trial recovered");
      }
    }

    if (!facts.has_recovered || !facts.reported_recovery.has_value() ||
        !facts.first_manifest_t.has_value()) {
      continue;
    }
    const auto rows_it = rows_by_run.find(run);
    if (rows_it == rows_by_run.end() || rows_it->second.empty()) continue;

    const double measured = *facts.reported_recovery;
    const double slack =
        std::max(options.phase_slack_seconds, options.phase_tolerance * measured);

    // Actions completing after the recovered instant are post-recovery work
    // (planned rejuvenation in the trial's settle window), not part of the
    // measured chain.
    double last_complete = 0.0;
    for (const RecoveryPhases* row : rows_it->second) {
      if (row->t_complete > facts.recovered_t + slack) continue;
      last_complete = std::max(last_complete, row->t_complete);
    }
    if (last_complete == 0.0) continue;
    const double chain = last_complete - *facts.first_manifest_t;
    if (std::abs(chain - measured) > slack) {
      flag("phase-sum", run, rows_it->second.front()->component, last_complete,
           "recovery chain spans " + util::format_fixed(chain, 6) +
               " s but the harness measured " +
               util::format_fixed(measured, 6) + " s");
    }

    // Single-action trials admit the strict decomposition check: the three
    // phases must tile the measured recovery exactly (bench_table1's
    // assertion). Chains with escalations/backoffs legally contain
    // re-detection and backoff gaps between actions.
    if (rows_it->second.size() == 1 && rows_it->second.front()->has_fault) {
      const RecoveryPhases& row = *rows_it->second.front();
      const double sum = row.detection() + row.decision() + row.execution();
      if (std::abs(sum - measured) > slack) {
        flag("phase-sum", run, row.component, row.t_complete,
             "detection+decision+execution = " + util::format_fixed(sum, 6) +
                 " s but the harness measured " +
                 util::format_fixed(measured, 6) + " s");
      }
    }
  }

  return issues;
}

}  // namespace

std::vector<TraceIssue> check_trace(const std::vector<TraceEvent>& events,
                                    const CheckOptions& options) {
  return check_trace_impl(events, options);
}

std::vector<TraceIssue> check_trace(const EventBuffer& events,
                                    const CheckOptions& options) {
  return check_trace_impl(events, options);
}

std::string describe(const std::vector<TraceIssue>& issues) {
  std::ostringstream out;
  for (const TraceIssue& issue : issues) {
    out << "[" << issue.invariant << "] run " << issue.run;
    if (!issue.component.empty()) out << " " << issue.component;
    out << " @" << util::format_fixed(issue.t, 6) << "s: " << issue.detail
        << "\n";
  }
  return out.str();
}

}  // namespace mercury::obs
