// The concrete Mercury components (paper Fig. 1):
//
//   mbus    — the message-bus process itself (restartable like the rest)
//   ses     — satellite estimator: orbit propagation, look angles, Doppler
//   str     — satellite tracker: drives the antenna from ses ephemerides
//   rtu     — radio tuner: Doppler-corrected tune commands during a pass
//   fedrcom — fused proxy between XML commands and low-level radio commands
//   fedr    — post-split front-end driver (command translation; unstable)
//   pbcom   — post-split serial-port proxy (slow negotiation; stable)
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "orbit/ground_station.h"
#include "orbit/propagator.h"
#include "sim/simulator.h"
#include "station/component.h"

namespace mercury::station {

class SyncCoordinator;
class FedrPbcomLink;

/// The mbus process. Its kill/restart drives the MessageBus crash/restart
/// semantics; while it is down, every component is unreachable.
class MbusComponent : public Component {
 public:
  MbusComponent(Station& station, ComponentTiming timing);

 protected:
  void on_killed() override;
  void on_started() override;
};

/// Satellite estimator. Publishes an `ephemeris` event (az/el/range/
/// range-rate/visibility) once per second while functional. Functional only
/// when resynchronized with str.
class SesComponent : public Component {
 public:
  SesComponent(Station& station, ComponentTiming timing, SyncCoordinator& sync);

  bool functional() const override;
  std::uint64_t ephemerides_published() const { return published_; }

 protected:
  void on_killed() override;
  void on_started() override;
  void on_instant_boot() override;

 private:
  void publish_ephemeris();

  SyncCoordinator& sync_;
  std::unique_ptr<sim::PeriodicTask> ephemeris_task_;
  std::uint64_t published_ = 0;
};

/// Satellite tracker. Consumes ephemerides and slews the antenna; parks it
/// when the satellite sets. Functional only when resynchronized with ses.
class StrComponent : public Component {
 public:
  StrComponent(Station& station, ComponentTiming timing, SyncCoordinator& sync);

  bool functional() const override;
  std::uint64_t pointings_commanded() const { return pointings_; }

 protected:
  void handle_message(const msg::Message& message) override;
  void on_killed() override;
  void on_started() override;
  void on_instant_boot() override;

 private:
  SyncCoordinator& sync_;
  std::uint64_t pointings_ = 0;
};

/// Radio tuner. Consumes ephemerides, computes the Doppler-corrected
/// downlink frequency, and commands the radio front end (fedr or fedrcom).
class RtuComponent : public Component {
 public:
  RtuComponent(Station& station, ComponentTiming timing);

  std::uint64_t tunes_commanded() const { return tunes_; }
  std::optional<double> last_tuned_hz() const { return last_tuned_hz_; }

 protected:
  void handle_message(const msg::Message& message) override;
  void on_started() override;
  void on_instant_boot() override;

 private:
  void save_tuning_checkpoint();

  std::uint64_t tunes_ = 0;
  std::optional<double> last_tuned_hz_;
};

/// Fused proxy (trees I and II): translates XML radio commands and owns the
/// serial port. Slow to restart (serial negotiation) and failure-prone
/// (buggy translator) — the bad MTTR/MTTF combination of §4.2.
class FedrcomComponent : public Component {
 public:
  FedrcomComponent(Station& station, ComponentTiming timing);

 protected:
  void handle_message(const msg::Message& message) override;
  void on_killed() override;
  void on_started() override;
  void on_instant_boot() override;
};

/// Post-split front-end driver: translates XML commands to radio command
/// lines and forwards them to pbcom over TCP. Functional only while
/// connected.
class FedrComponent : public Component {
 public:
  FedrComponent(Station& station, ComponentTiming timing, FedrPbcomLink& link);

  bool functional() const override;

 protected:
  void handle_message(const msg::Message& message) override;
  void on_killed() override;
  void on_started() override;
  void on_instant_boot() override;

 private:
  FedrPbcomLink& link_;
};

/// Post-split serial-port proxy: accepts radio command lines from fedr and
/// writes them to the serial port. Slow startup (hardware negotiation).
class PbcomComponent : public Component {
 public:
  PbcomComponent(Station& station, ComponentTiming timing, FedrPbcomLink& link);

  /// A radio command line arriving over the fedr->pbcom TCP connection.
  void deliver_line(const std::string& line);

 protected:
  void handle_message(const msg::Message& message) override;
  void on_killed() override;
  void on_started() override;
  void on_instant_boot() override;

 private:
  FedrPbcomLink& link_;
};

}  // namespace mercury::station
