// Downlink session accounting — the economics of downtime (paper §5.2).
//
// "Downtime during satellite passes (typically about 4 per day per
// satellite, lasting about 15 minutes each) is very expensive because we
// may lose some science data and telemetry. Additionally, if the failure
// involves the tracking subsystem and the recovery time is too long, the
// communication link will break and the entire session will be lost. ...
// a short MTTR can provide high assurance that we will not lose the whole
// pass as a result of a failure."
//
// A DownlinkSession runs for the duration of one pass. While the station is
// functional and the satellite visible, science data accumulates at the
// link rate (38.4 kbps, §2.1). A station outage pauses the stream; an
// outage longer than `link_break_threshold` breaks carrier lock and the
// remainder of the session is lost.
#pragma once

#include <cstdint>

#include "orbit/pass_predictor.h"
#include "sim/simulator.h"
#include "station/station.h"
#include "util/time.h"

namespace mercury::station {

struct DownlinkConfig {
  /// Link data rate, bits per second ("up to 38.4 kbps", §2.1).
  double data_rate_bps = 38'400.0;
  /// An outage longer than this breaks the communication link; the rest of
  /// the session is unrecoverable (re-acquisition is not attempted within
  /// the pass).
  util::Duration link_break_threshold = util::Duration::seconds(15.0);
  /// Sampling resolution of the link state.
  util::Duration sample_period = util::Duration::millis(250.0);
};

/// Outcome of one pass.
struct SessionReport {
  orbit::Pass pass;
  double captured_bits = 0.0;
  /// Bits the pass offered with a perfectly available station.
  double offered_bits = 0.0;
  util::Duration outage = util::Duration::zero();
  util::Duration longest_outage = util::Duration::zero();
  bool link_broken = false;

  double capture_fraction() const {
    return offered_bits > 0.0 ? captured_bits / offered_bits : 0.0;
  }
};

/// Tracks one pass. Construct before AOS, run the simulation through LOS,
/// then read report(). Samples the station's functional state on a periodic
/// task; no component behaviour is altered.
class DownlinkSession {
 public:
  DownlinkSession(Station& station, orbit::Pass pass, DownlinkConfig config = {});
  ~DownlinkSession();

  DownlinkSession(const DownlinkSession&) = delete;
  DownlinkSession& operator=(const DownlinkSession&) = delete;

  /// Begin sampling (arms a periodic task; safe to call before AOS).
  void start();

  bool finished() const;
  const SessionReport& report() const { return report_; }

 private:
  void sample();

  Station& station_;
  DownlinkConfig config_;
  SessionReport report_;
  std::unique_ptr<sim::PeriodicTask> sampler_;
  util::Duration current_outage_ = util::Duration::zero();
  bool done_ = false;
};

}  // namespace mercury::station
