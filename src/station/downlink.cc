#include "station/downlink.h"

#include "util/log.h"

namespace mercury::station {

using util::Duration;

DownlinkSession::DownlinkSession(Station& station, orbit::Pass pass,
                                 DownlinkConfig config)
    : station_(station), config_(config) {
  report_.pass = pass;
}

DownlinkSession::~DownlinkSession() = default;

void DownlinkSession::start() {
  sampler_ = std::make_unique<sim::PeriodicTask>(
      station_.sim(), "downlink.sample", config_.sample_period,
      [this] { sample(); });
  sampler_->start();
}

bool DownlinkSession::finished() const { return done_; }

void DownlinkSession::sample() {
  const auto now = station_.sim().now();
  if (now < report_.pass.aos) return;
  if (done_) return;
  if (now >= report_.pass.los) {
    done_ = true;
    sampler_->stop();
    return;
  }

  const double dt = config_.sample_period.to_seconds();
  report_.offered_bits += config_.data_rate_bps * dt;
  if (report_.link_broken) return;

  if (station_.all_functional()) {
    report_.captured_bits += config_.data_rate_bps * dt;
    current_outage_ = Duration::zero();
    return;
  }

  // Station down mid-pass: the stream pauses; a long outage breaks lock.
  current_outage_ += config_.sample_period;
  report_.outage += config_.sample_period;
  if (current_outage_ > report_.longest_outage) {
    report_.longest_outage = current_outage_;
  }
  if (current_outage_ >= config_.link_break_threshold) {
    report_.link_broken = true;
    util::LogLine(util::LogLevel::kInfo, now, "downlink")
        << "outage exceeded " << config_.link_break_threshold.str()
        << "; communication link broken, session lost (§5.2)";
  }
}

}  // namespace mercury::station
