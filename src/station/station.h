// Station: the assembled Mercury ground station (paper Fig. 1).
//
// Owns the bus, the failure board, the components (fused or split fedrcom
// per configuration), the hardware models (antenna, radio, serial port),
// the coordination objects (ses/str sync, fedr/pbcom link) and the process
// manager. The failure detector and recoverer (core/) attach from outside,
// exactly as FD and REC were added to the existing Mercury (§2.2).
#pragma once

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "bus/message_bus.h"
#include "core/checkpoint.h"
#include "core/failure_board.h"
#include "orbit/ground_station.h"
#include "orbit/propagator.h"
#include "sim/simulator.h"
#include "station/antenna.h"
#include "station/calibration.h"
#include "station/component.h"
#include "station/components.h"
#include "station/fedr_pbcom_link.h"
#include "station/process_manager.h"
#include "station/radio.h"
#include "station/sync_coordinator.h"

namespace mercury::station {

struct StationConfig {
  /// false: fused fedrcom (trees I, II); true: split fedr + pbcom.
  bool split_fedrcom = true;
  /// Domain chatter (ephemerides, pointing, tuning). Disable for very long
  /// fault-injection runs where only the recovery machinery matters.
  bool enable_domain_behavior = true;
  Calibration cal = default_calibration();
  /// The satellite being tracked (default: a Sapphire-like circular LEO).
  orbit::KeplerianElements satellite =
      orbit::KeplerianElements::circular_leo(800.0, 60.0);
  orbit::GroundStation site = orbit::GroundStation::stanford();
  bus::BusConfig bus;
  /// Checkpointed warm restarts (ISSUE 3), tiered L0/L1/L2 (ISSUE 7).
  /// Disabled by default: legacy configurations reproduce the seed's
  /// cold-path numbers bit-for-bit.
  core::CheckpointPolicy checkpoints;
};

class Station {
 public:
  Station(sim::Simulator& sim, StationConfig config);

  Station(const Station&) = delete;
  Station& operator=(const Station&) = delete;

  // --- Wiring ------------------------------------------------------------
  sim::Simulator& sim() { return sim_; }
  bus::MessageBus& bus() { return *bus_; }
  core::FailureBoard& board() { return board_; }
  core::TieredCheckpointStore& checkpoints() { return checkpoints_; }
  const core::TieredCheckpointStore& checkpoints() const { return checkpoints_; }
  ProcessManager& process_manager() { return *process_manager_; }
  const StationConfig& config() const { return config_; }
  const Calibration& cal() const { return config_.cal; }

  Antenna& antenna() { return antenna_; }
  Radio& radio() { return radio_; }
  SerialPort& serial_port() { return serial_port_; }
  const orbit::Propagator& satellite() const { return satellite_; }
  const orbit::GroundStation& site() const { return config_.site; }
  SyncCoordinator& ses_str_sync() { return *sync_; }
  FedrPbcomLink& fedr_pbcom_link();

  Component* component(const std::string& name);
  const Component* component(const std::string& name) const;
  std::vector<std::string> component_names() const;

  /// Name of the component that owns the radio front end ("fedr" when
  /// split, "fedrcom" when fused) — where rtu sends tune commands.
  const std::string& radio_frontend_name() const { return radio_frontend_; }

  // --- Lifecycle ---------------------------------------------------------
  /// Boot directly into the steady state: all components up, attached,
  /// synced/connected; bus online. No startup transient is simulated.
  void boot_instant();

  /// Re-attach every up component to the bus (called after a bus restart;
  /// models TCP auto-reconnect).
  void reattach_all();

  /// Register a callback run whenever the bus comes back after a restart
  /// (the failure detector uses this to re-attach its own endpoint).
  void add_bus_restart_listener(std::function<void()> listener);
  void notify_bus_restarted();

  /// Register a callback run whenever a component completes a restart
  /// (the background fault injector resamples rejuvenated lifetimes here).
  void add_restart_listener(
      std::function<void(const std::string&, util::TimePoint)> listener);
  void notify_component_restarted(const std::string& name);

  // --- Health ------------------------------------------------------------
  /// Ground truth for the experiment harness: bus online, every component
  /// functional, no active failures, no restart in flight.
  bool all_functional() const;

  /// Degraded-operation ground truth (ISSUE 2): like all_functional, but
  /// components in `excluded` (typically REC's parked set) are ignored —
  /// their manifesting failures, their down/restarting state. A station
  /// that is functional_except its parked cells is operating degraded,
  /// not broken. Note an excluded mbus still fails this check: nothing
  /// works without the bus.
  bool functional_except(const std::set<std::string>& excluded) const;

  /// Convenience fault injection.
  core::FailureId inject_crash(const std::string& component);
  core::FailureId inject_joint_fedr_pbcom();
  /// Soft-curable transient (§7): the component's bus attachment goes
  /// stale — it stops answering until a soft recovery (or restart).
  core::FailureId inject_stale_attachment(const std::string& component);

  /// Install (or clear, with an inactive spec) restart-time faults for
  /// `component`: each startup attempt may hang or crash per the spec
  /// (ISSUE 2). Forwards to the failure board; the process manager consults
  /// it on every attempt.
  void set_restart_faults(const std::string& component,
                          core::RestartFaultSpec spec);

  /// Save `component`'s soft-state snapshot (no-op unless the checkpoint
  /// policy is enabled — legacy configurations stay checkpoint-free).
  void save_checkpoint(const std::string& component,
                       std::vector<std::pair<std::string, std::string>> payload);

 private:
  sim::Simulator& sim_;
  StationConfig config_;
  core::FailureBoard board_;
  core::TieredCheckpointStore checkpoints_;
  std::unique_ptr<bus::MessageBus> bus_;
  Radio radio_;
  SerialPort serial_port_;
  Antenna antenna_;
  orbit::Propagator satellite_;
  std::unique_ptr<SyncCoordinator> sync_;
  std::unique_ptr<FedrPbcomLink> link_;
  std::unique_ptr<ProcessManager> process_manager_;
  std::map<std::string, std::unique_ptr<Component>> components_;
  std::vector<std::function<void()>> bus_restart_listeners_;
  std::vector<std::function<void(const std::string&, util::TimePoint)>>
      restart_listeners_;
  std::string radio_frontend_;
};

}  // namespace mercury::station
