// Antenna pedestal model: az/el pointing with slew-rate limits.
//
// str "points antennas to track a satellite during a pass" (§2.1). The
// pedestal slews toward its commanded angles at a bounded rate; pointing
// error is the angular distance between the commanded and actual boresight.
#pragma once

#include "util/time.h"

namespace mercury::station {

struct AntennaConfig {
  double max_slew_deg_per_sec = 6.0;
  /// Park position when idle.
  double park_azimuth_deg = 0.0;
  double park_elevation_deg = 90.0;
};

class Antenna {
 public:
  explicit Antenna(AntennaConfig config = {});

  /// Command a new target; actual position keeps slewing toward the most
  /// recent target at the configured rate.
  void point(double azimuth_deg, double elevation_deg, util::TimePoint now);

  /// Command the park position.
  void park(util::TimePoint now);

  double azimuth_deg(util::TimePoint now) const;
  double elevation_deg(util::TimePoint now) const;
  double target_azimuth_deg() const { return target_az_; }
  double target_elevation_deg() const { return target_el_; }

  /// Great-circle angle between boresight and target, degrees.
  double pointing_error_deg(util::TimePoint now) const;

 private:
  /// Advance the pedestal's physical position to `now` (lazy integration;
  /// mutable state because observation itself settles the model).
  void settle(util::TimePoint now) const;
  static double step_toward(double from, double to, double max_step,
                            bool wrap_azimuth);

  AntennaConfig config_;
  mutable double az_ = 0.0;
  mutable double el_ = 90.0;
  double target_az_ = 0.0;
  double target_el_ = 90.0;
  mutable util::TimePoint last_update_;
};

}  // namespace mercury::station
