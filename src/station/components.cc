#include "station/components.h"

#include <memory>

#include "core/mercury_trees.h"
#include "orbit/doppler.h"
#include "station/fedr_pbcom_link.h"
#include "station/station.h"
#include "station/sync_coordinator.h"
#include "util/log.h"
#include "util/strings.h"

namespace mercury::station {

namespace names = core::component_names;

// --- mbus -----------------------------------------------------------------

MbusComponent::MbusComponent(Station& station, ComponentTiming timing)
    : Component(station, names::kMbus, timing) {}

void MbusComponent::on_killed() { station_.bus().crash(); }

void MbusComponent::on_started() {
  station_.bus().restart();
  station_.reattach_all();
  station_.notify_bus_restarted();
}

// --- ses --------------------------------------------------------------------

SesComponent::SesComponent(Station& station, ComponentTiming timing,
                           SyncCoordinator& sync)
    : Component(station, names::kSes, timing), sync_(sync) {
  if (station_.config().enable_domain_behavior) {
    // The estimator publishes an ephemeris once a second while functional.
    ephemeris_task_ = std::make_unique<sim::PeriodicTask>(
        station_.sim(), "ses.ephemeris", util::Duration::seconds(1.0),
        [this] { publish_ephemeris(); });
    ephemeris_task_->start_with_phase(util::Duration::millis(500.0));
  }
}

bool SesComponent::functional() const {
  return responsive() && sync_.synced(name());
}

void SesComponent::publish_ephemeris() {
  if (!functional()) return;
  const auto now = station_.sim().now();
  const orbit::LookAngles look = station_.site().look_at(station_.satellite(), now);
  const bool visible =
      look.elevation_rad >= station_.site().min_elevation_rad();

  msg::Message ephemeris = msg::make_event(name(), next_seq(), "ephemeris");
  ephemeris.body.set_attr("az_deg", orbit::rad_to_deg(look.azimuth_rad));
  ephemeris.body.set_attr("el_deg", orbit::rad_to_deg(look.elevation_rad));
  ephemeris.body.set_attr("range_km", look.range_km);
  ephemeris.body.set_attr("range_rate_km_s", look.range_rate_km_s);
  ephemeris.body.set_attr("visible", std::string{visible ? "1" : "0"});
  send(ephemeris);
  ++published_;
}

void SesComponent::on_killed() { sync_.on_killed(name()); }
void SesComponent::on_started() { sync_.on_started(name()); }
void SesComponent::on_instant_boot() { sync_.on_instant_boot(); }

// --- str --------------------------------------------------------------------

StrComponent::StrComponent(Station& station, ComponentTiming timing,
                           SyncCoordinator& sync)
    : Component(station, names::kStr, timing), sync_(sync) {}

bool StrComponent::functional() const {
  return responsive() && sync_.synced(name());
}

void StrComponent::handle_message(const msg::Message& message) {
  if (message.kind != msg::Kind::kEvent || message.verb != "ephemeris") return;
  if (!functional()) return;
  const auto az = message.body.attr_double("az_deg");
  const auto el = message.body.attr_double("el_deg");
  const auto visible = message.body.attr_or("visible", "0") == "1";
  if (!az || !el) return;
  if (visible) {
    station_.antenna().point(*az, *el, station_.sim().now());
  } else {
    station_.antenna().park(station_.sim().now());
  }
  ++pointings_;
}

void StrComponent::on_killed() { sync_.on_killed(name()); }
void StrComponent::on_started() { sync_.on_started(name()); }
void StrComponent::on_instant_boot() { sync_.on_instant_boot(); }

// --- rtu --------------------------------------------------------------------

RtuComponent::RtuComponent(Station& station, ComponentTiming timing)
    : Component(station, names::kRtu, timing) {}

void RtuComponent::handle_message(const msg::Message& message) {
  if (message.kind != msg::Kind::kEvent || message.verb != "ephemeris") return;
  const auto rate = message.body.attr_double("range_rate_km_s");
  const auto visible = message.body.attr_or("visible", "0") == "1";
  if (!rate || !visible) return;

  constexpr double kNominalDownlinkHz = 437.1e6;  // Sapphire downlink band
  const double tuned = orbit::doppler_shifted_hz(kNominalDownlinkHz, *rate);
  msg::Message tune = msg::make_command(name(), station_.radio_frontend_name(),
                                        next_seq(), "tune");
  tune.body.set_attr("freq_hz", tuned);
  send(tune);
  ++tunes_;
  last_tuned_hz_ = tuned;
  save_tuning_checkpoint();
}

void RtuComponent::save_tuning_checkpoint() {
  // rtu's soft state is its tuning table: the last Doppler-corrected
  // frequency it derived from ses ephemerides. A warm rtu reloads it instead
  // of waiting for a fresh ephemeris round.
  station_.save_checkpoint(
      name(), {{"last_tuned_hz",
                last_tuned_hz_ ? util::format_fixed(*last_tuned_hz_, 0) : "none"}});
}

void RtuComponent::on_started() { save_tuning_checkpoint(); }
void RtuComponent::on_instant_boot() { save_tuning_checkpoint(); }

// --- fedrcom (fused) ----------------------------------------------------------

FedrcomComponent::FedrcomComponent(Station& station, ComponentTiming timing)
    : Component(station, names::kFedrcom, timing) {}

void FedrcomComponent::handle_message(const msg::Message& message) {
  if (message.kind != msg::Kind::kCommand || message.verb != "tune") return;
  const auto freq = message.body.attr_double("freq_hz");
  if (!freq) {
    send(msg::make_nack(message, name(), "missing freq_hz"));
    return;
  }
  // Translate the XML command to a low-level radio command on the serial
  // line the fused proxy owns.
  station_.serial_port().write("FREQ " + util::format_fixed(*freq, 0),
                               station_.sim().now());
  send(msg::make_ack(message, name()));
}

void FedrcomComponent::on_killed() { station_.serial_port().close(); }

void FedrcomComponent::on_started() {
  station_.serial_port().open();
  // The fused proxy's soft state is the negotiated serial configuration —
  // the ~20 s negotiation a warm restart skips by reloading it.
  station_.save_checkpoint(name(), {{"serial", "negotiated"},
                                    {"baud", "9600"}});
}

void FedrcomComponent::on_instant_boot() {
  station_.serial_port().open();
  station_.save_checkpoint(name(), {{"serial", "negotiated"},
                                    {"baud", "9600"}});
}

// --- fedr (split front-end driver) ---------------------------------------------

FedrComponent::FedrComponent(Station& station, ComponentTiming timing,
                             FedrPbcomLink& link)
    : Component(station, names::kFedr, timing), link_(link) {}

bool FedrComponent::functional() const { return responsive() && link_.connected(); }

void FedrComponent::handle_message(const msg::Message& message) {
  if (message.kind != msg::Kind::kCommand || message.verb != "tune") return;
  const auto freq = message.body.attr_double("freq_hz");
  if (!freq) {
    send(msg::make_nack(message, name(), "missing freq_hz"));
    return;
  }
  if (!link_.connected()) {
    send(msg::make_nack(message, name(), "pbcom link down"));
    return;
  }
  // Forward the translated line over the fedr->pbcom TCP connection (a
  // direct pipe, not mbus traffic).
  auto* pbcom =
      dynamic_cast<PbcomComponent*>(station_.component(names::kPbcom));
  if (pbcom == nullptr) return;
  const std::string line = "FREQ " + util::format_fixed(*freq, 0);
  station_.sim().schedule_after(util::Duration::millis(2.0), "fedr.tcp",
                                [this, pbcom, line] {
                                  if (link_.connected()) pbcom->deliver_line(line);
                                });
  send(msg::make_ack(message, name()));
}

void FedrComponent::on_killed() { link_.on_fedr_killed(); }

void FedrComponent::on_started() {
  link_.on_fedr_started();
  // fedr's soft state is modest (the pbcom session context); the warm win is
  // mostly the translator's warmed caches, not the cheap TCP reconnect.
  station_.save_checkpoint(name(), {{"pbcom_session", "cached"}});
}

void FedrComponent::on_instant_boot() {
  link_.on_instant_boot();
  station_.save_checkpoint(name(), {{"pbcom_session", "cached"}});
}

// --- pbcom (split serial proxy) -------------------------------------------------

PbcomComponent::PbcomComponent(Station& station, ComponentTiming timing,
                               FedrPbcomLink& link)
    : Component(station, names::kPbcom, timing), link_(link) {}

void PbcomComponent::handle_message(const msg::Message& message) {
  // pbcom speaks raw radio lines over TCP, not the command language; its
  // only mbus traffic is liveness pings (handled by the base class).
  (void)message;
}

void PbcomComponent::deliver_line(const std::string& line) {
  if (!responsive()) return;  // dead or wedged proxy drops the line
  station_.serial_port().write(line, station_.sim().now());
}

void PbcomComponent::on_killed() {
  station_.serial_port().close();
  link_.on_pbcom_killed();
}

void PbcomComponent::on_started() {
  station_.serial_port().open();
  link_.on_pbcom_started();
  // pbcom's soft state is the negotiated serial-port parameters — the slow
  // hardware negotiation ("over 21 seconds") a warm restart skips.
  station_.save_checkpoint(name(), {{"serial", "negotiated"},
                                    {"baud", "9600"}});
}

void PbcomComponent::on_instant_boot() {
  station_.serial_port().open();
  station_.save_checkpoint(name(), {{"serial", "negotiated"},
                                    {"baud", "9600"}});
}

}  // namespace mercury::station
