// Background fault injector: drives the station with Table-1 failure rates.
//
// Each component draws fail-silent crashes from its observed MTTF
// (exponential inter-arrivals; fedr uses a Weibull(k=2) lifetime measured
// from its last restart, giving the increasing hazard that makes
// rejuvenation — tree V's "free" fedr restarts — actually improve MTTF,
// §4.4). pbcom additionally fails through the aging mechanism modeled in
// FedrPbcomLink. A configurable fraction of pbcom-manifesting failures
// requires the joint {fedr,pbcom} cure.
//
// Used by bench_table1 (regenerating the observed MTTFs), the availability
// ablation, and the rejuvenation ablation.
#pragma once

#include <array>
#include <map>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/failure.h"
#include "station/station.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace mercury::station {

struct InjectorConfig {
  /// Fraction of pbcom-manifesting background failures needing the joint
  /// {fedr,pbcom} cure (§4.4's "failures that manifest in pbcom but can
  /// only be cured by a joint restart").
  double pbcom_joint_fraction = 0.25;
  /// Weibull shape for fedr's age-dependent lifetime; 1.0 = memoryless.
  double fedr_weibull_shape = 2.0;
  /// Only inject into components that currently have no manifesting
  /// failure (a dead component cannot fail again).
  bool suppress_double_faults = true;
  /// Restart-time fault mix (ISSUE 2) installed on every non-exempt
  /// component at start(): each startup attempt hangs or crashes with
  /// these probabilities. Inactive (all zero) by default — clean restarts.
  core::RestartFaultSpec restart_faults;
  /// Components exempt from the restart-fault mix. mbus is exempt by
  /// default: a parked bus is total loss, not degraded operation, and the
  /// availability ablations want the degraded regime.
  std::vector<std::string> restart_fault_exempt = {"mbus"};

  // --- Checkpoint damage (ISSUE 3) ----------------------------------------
  // Whatever crashed a component may have trashed its saved snapshot too.
  // Rolled per injected failure, in this order (first hit wins). These
  // legacy knobs target the victim's *local* (L0) snapshot:
  /// detectably corrupt the victim's checkpoint (checksum mismatch; the
  /// restart validates, deletes, and runs cold),
  double checkpoint_corrupt_prob = 0.0;
  /// undetectably poison it (checksum recomputed; the warm attempt crashes
  /// mid-startup — a restart-path fault for the hardened recoverer),
  double checkpoint_poison_prob = 0.0;
  /// or backdate it beyond the station's TTL (stale; cold fallback).
  double checkpoint_stale_prob = 0.0;

  bool damages_checkpoints() const {
    return checkpoint_corrupt_prob > 0.0 || checkpoint_poison_prob > 0.0 ||
           checkpoint_stale_prob > 0.0;
  }

  // --- Per-tier checkpoint damage (ISSUE 7) -------------------------------
  /// Damage probabilities for one checkpoint tier of the victim, rolled per
  /// injected failure, first hit wins within the tier: kill (the tier's
  /// copy vanishes outright), corrupt (detectable), poison (undetectable),
  /// stale (backdated beyond TTL). Tiers roll independently, so one fault
  /// can take several tiers at once — the correlated-loss case.
  struct TierDamageProbs {
    double kill = 0.0;
    double corrupt = 0.0;
    double poison = 0.0;
    double stale = 0.0;
    bool active() const {
      return kill > 0.0 || corrupt > 0.0 || poison > 0.0 || stale > 0.0;
    }
  };
  /// Indexed by core::CheckpointTier (L0, L1, L2).
  std::array<TierDamageProbs, core::kCheckpointTierCount> tier_damage{};
  /// Correlated partner failure: with this probability the background fault
  /// also crashes the victim's L1 replica host (ses↔str-style coupling) —
  /// the replica dies with it, leaving only stable storage above cold.
  double partner_down_prob = 0.0;

  bool damages_tiers() const {
    for (const TierDamageProbs& probs : tier_damage) {
      if (probs.active()) return true;
    }
    return false;
  }
};

class FaultInjector {
 public:
  FaultInjector(Station& station, InjectorConfig config);

  /// Begin drawing failures for every component with a finite MTTF.
  void start();

  /// Number of failures injected into `component` so far.
  std::uint64_t injected(const std::string& component) const;
  std::uint64_t total_injected() const;

  /// Observed inter-failure times per component (empirical MTTF check for
  /// Table 1). For fedr this measures the *effective* MTTF including
  /// rejuvenation by intervening restarts.
  const util::SampleStats& inter_failure_times(const std::string& component) const;

 private:
  struct Source {
    std::string component;
    util::Duration mttf;
    std::uint64_t injected = 0;
    util::TimePoint last_failure;
    bool has_failed_before = false;
    util::SampleStats inter_failure;
  };

  void schedule_next(Source& source);
  void fire(Source& source);
  util::Duration draw_lifetime(Source& source);

  Station& station_;
  InjectorConfig config_;
  util::Rng rng_;
  std::map<std::string, Source> sources_;
  /// fedr's last restart time, for the age-dependent draw.
  util::TimePoint fedr_last_restart_;
  std::uint64_t fedr_epoch_ = 0;  ///< bumped on fedr restart; voids old draws
};

}  // namespace mercury::station
