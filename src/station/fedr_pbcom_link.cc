#include "station/fedr_pbcom_link.h"

#include "core/failure.h"
#include "core/mercury_trees.h"
#include "station/station.h"
#include "util/log.h"

namespace mercury::station {

namespace names = core::component_names;
using util::LogLevel;
using util::LogLine;

FedrPbcomLink::FedrPbcomLink(Station& station) : station_(station) {}

void FedrPbcomLink::on_fedr_killed() {
  ++epoch_;
  ++fedr_restarts_;
  sever(/*ages_pbcom=*/true);
}

void FedrPbcomLink::on_fedr_crash_manifested() {
  // The crashed fedr's TCP connection drops immediately; the kill that
  // follows during recovery must not age pbcom a second time for the same
  // incident, so the restart path only ages when still connected.
  sever(/*ages_pbcom=*/true);
}

void FedrPbcomLink::on_pbcom_killed() {
  ++epoch_;
  // pbcom going down severs the connection but rejuvenates pbcom itself.
  sever(/*ages_pbcom=*/false);
  pbcom_age_ = 0;
}

void FedrPbcomLink::sever(bool ages_pbcom) {
  if (!connected_) return;
  connected_ = false;
  if (!ages_pbcom) return;

  ++pbcom_age_;
  LogLine(LogLevel::kDebug, station_.sim().now(), "pbcom")
      << "aged by connection loss (" << pbcom_age_ << "/"
      << station_.cal().pbcom_aging_threshold << ")";
  if (pbcom_age_ >= station_.cal().pbcom_aging_threshold &&
      !station_.board().manifests_at(names::kPbcom)) {
    LogLine(LogLevel::kInfo, station_.sim().now(), "pbcom")
        << "aging reached threshold; pbcom fails (correlated failure, §4.2)";
    core::FailureSpec aging = core::make_crash(names::kPbcom);
    aging.kind = "aging";
    station_.board().inject(std::move(aging), station_.sim().now());
  }
}

void FedrPbcomLink::on_fedr_started() {
  try_connect(station_.cal().fedr_connect, epoch_);
}

void FedrPbcomLink::on_pbcom_started() {
  // fedr (if alive) notices the dropped connection and reconnects on its
  // retry poll — the "communication overhead" behind pbcom's 21.24 s.
  Component* fedr = station_.component(names::kFedr);
  if (fedr != nullptr && fedr->up() && !fedr->restarting()) {
    try_connect(station_.cal().fedr_reconnect, epoch_);
  }
}

void FedrPbcomLink::try_connect(util::Duration delay, std::uint64_t epoch) {
  station_.sim().schedule_after(delay, "fedr.connect", [this, epoch] {
    if (epoch != epoch_) return;  // a kill intervened
    retry_loop(epoch);
  });
}

void FedrPbcomLink::retry_loop(std::uint64_t epoch) {
  if (epoch != epoch_) return;
  Component* fedr = station_.component(names::kFedr);
  Component* pbcom = station_.component(names::kPbcom);
  if (fedr == nullptr || pbcom == nullptr) return;
  if (!fedr->up() || fedr->restarting()) return;
  if (pbcom->responsive()) {
    if (!connected_) {
      connected_ = true;
      LogLine(LogLevel::kDebug, station_.sim().now(), "fedr")
          << "connected to pbcom";
    }
    return;
  }
  // pbcom not ready (restarting or manifesting): poll again.
  station_.sim().schedule_after(station_.cal().fedr_reconnect, "fedr.retry",
                                [this, epoch] { retry_loop(epoch); });
}

void FedrPbcomLink::on_instant_boot() {
  connected_ = true;
  pbcom_age_ = 0;
}

}  // namespace mercury::station
