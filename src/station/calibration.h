// Calibrated timing model for the simulated Mercury station.
//
// The paper reports wall-clock recovery times measured on the physical
// Stanford testbed (Tables 2 and 4). Our substrate is a simulator, so we
// calibrate its primitive timings — restart durations, detection-path
// latencies, sync/negotiation costs — such that the *mechanisms* the paper
// describes reproduce the published numbers:
//
//   MTTR(component under tree T) =
//       detection latency                (ping phase + reply timeout)
//     + restart duration x contention    (whole-system restarts contend)
//     + readiness epilogue               (ses/str resync, fedr reconnect)
//     [+ escalation rounds for wrong oracle guesses]
//
// Worked example (tree II, ses failure, paper: 9.50 s):
//   ~0.66 detect ses + 4.10 restart ses + ~0.66 detect induced str wedge
//   + 4.16 restart str + 0.05 listen handshake  ~= 9.6 s.
//
// The derivations for each constant are in DESIGN.md §4.
#pragma once

#include <string>

#include "util/time.h"

namespace mercury::station {

using util::Duration;

/// Restart-duration model for one component (normal, small CV, clamped).
struct ComponentTiming {
  Duration startup_mean = Duration::seconds(5.0);
  /// Paper §3.2 assumes distributions with small coefficients of variation;
  /// we use ~1.5% of the mean.
  Duration startup_stddev = Duration::millis(75.0);
  /// Warm-restart startup (ISSUE 3): the process respawn plus a checkpoint
  /// reload, skipping the state reconstruction (serial negotiation, sync
  /// session setup, ephemeris re-acquisition) that dominates the cold mean.
  /// A zero mean means the component has no warm path and always starts
  /// cold, checkpoint or not.
  Duration warm_startup_mean = Duration::zero();
  Duration warm_startup_stddev = Duration::zero();

  bool has_warm_path() const { return warm_startup_mean > Duration::zero(); }
};

struct Calibration {
  // --- Failure detection (paper §2.2) ------------------------------------
  /// "FD continuously performs liveness pings on Mercury components, with a
  /// period of 1 second, determined from operational experience."
  Duration ping_period = Duration::seconds(1.0);
  /// Reply timeout before FD declares a ping missed.
  Duration ping_timeout = Duration::millis(150.0);
  /// FD<->REC dedicated-link latency.
  Duration link_latency = Duration::millis(1.0);

  // --- Component restart durations ---------------------------------------
  // Warm means (3rd/4th fields) model a respawn that reloads a checkpoint
  // instead of reconstructing state: pbcom/fedrcom skip the ~17.5 s serial
  // negotiation and keep only spawn + parameter reload; ses/str skip the
  // sync-session setup; rtu reloads its last tuning table instead of
  // re-deriving it from fresh ephemerides. mbus has no warm path — the bus
  // carries no recoverable soft state worth snapshotting.
  ComponentTiming mbus{Duration::seconds(5.35), Duration::millis(80.0)};
  ComponentTiming ses{Duration::seconds(4.10), Duration::millis(60.0),
                      Duration::seconds(1.45), Duration::millis(22.0)};
  ComponentTiming str{Duration::seconds(4.16), Duration::millis(60.0),
                      Duration::seconds(1.48), Duration::millis(22.0)};
  ComponentTiming rtu{Duration::seconds(4.94), Duration::millis(75.0),
                      Duration::seconds(1.62), Duration::millis(25.0)};
  /// Fused proxy: slow serial negotiation dominates ("takes over 21 seconds
  /// to restart fedrcom", §4.2 — our 20.28 + detection lands at ~20.9).
  ComponentTiming fedrcom{Duration::seconds(20.28), Duration::millis(300.0),
                          Duration::seconds(2.88), Duration::millis(45.0)};
  /// Split front-end driver: "buggy and unstable, but recovers very quickly
  /// (under 6 seconds)". Its soft state is the TCP session to pbcom, which
  /// reconnects cheaply anyway; the warm win is modest.
  ComponentTiming fedr{Duration::seconds(5.11), Duration::millis(75.0),
                       Duration::seconds(2.20), Duration::millis(33.0)};
  /// Split serial-port proxy: "simple and very stable, but takes a long
  /// time to recover (over 21 seconds)".
  ComponentTiming pbcom{Duration::seconds(20.49), Duration::millis(300.0),
                        Duration::seconds(2.95), Duration::millis(45.0)};
  /// Failure detector / recovery module restart (not in the paper's tables;
  /// exercised by the FD/REC mutual-recovery paths).
  ComponentTiming fd{Duration::seconds(2.0), Duration::millis(30.0)};
  ComponentTiming rec{Duration::seconds(2.0), Duration::millis(30.0)};

  // --- Restart contention (§4.1) ------------------------------------------
  /// "A whole system restart causes contention for resources that is not
  /// present when restarting just one component; this contention slows all
  /// components down." Startup durations are multiplied by
  /// 1 + slope * max(0, concurrent_restarts - 2); calibrated so a 5-way
  /// restart inflates fedrcom's 20.28 s to the ~24.1 s behind tree I's
  /// 24.75 s row.
  double contention_slope = 0.0628;

  // --- ses/str resynchronization (§4.3) -----------------------------------
  /// Both restarted together: simultaneous mutual handshake collides and
  /// renegotiates (tree IV pays this once, in parallel with nothing).
  Duration sync_collide = Duration::seconds(1.39);
  /// One side restarted into a peer already parked in listen-wait: cheap.
  Duration sync_listen = Duration::millis(50.0);

  // --- fedr/pbcom TCP link (§4.2) ------------------------------------------
  /// fedr's reconnect poll when pbcom restarts under it ("the increased
  /// value of pbcom's recovery time is due to communication overhead").
  Duration fedr_reconnect = Duration::millis(100.0);
  /// fedr's connect at its own startup when pbcom is already up.
  Duration fedr_connect = Duration::millis(20.0);

  // --- Recursive recovery (§7) ----------------------------------------------
  /// Duration of a component's soft recovery procedure (reconnect to the
  /// bus, refresh session state) — the cheap rung below a restart.
  Duration soft_recovery_duration = Duration::millis(250.0);

  // --- Correlated-failure aging (§4.2, §4.4) -------------------------------
  /// "pbcom ages every time it loses the connection and, at some point, the
  /// aging leads to its total failure."
  int pbcom_aging_threshold = 10;

  // --- Observed MTTFs (Table 1), used by the background fault injector ----
  Duration mttf_mbus = Duration::days(30.0);
  Duration mttf_fedrcom = Duration::minutes(10.0);
  Duration mttf_ses = Duration::hours(5.0);
  Duration mttf_str = Duration::hours(5.0);
  Duration mttf_rtu = Duration::hours(5.0);
  /// Post-split MTTFs: fedr inherits fedrcom's instability (the bugs live in
  /// the command translator); pbcom alone is stable (§4.2).
  Duration mttf_fedr = Duration::minutes(11.0);
  Duration mttf_pbcom = Duration::days(3.0);

  ComponentTiming timing_for(const std::string& component) const;
  Duration mttf_for(const std::string& component) const;
};

/// The default calibration targets the paper's Tables 2 and 4.
const Calibration& default_calibration();

}  // namespace mercury::station
