// Component: base class for Mercury's independently restartable processes.
//
// "Software components are independently operating processes with
// autonomous loci of control and interoperate through passing of messages
// composed in our XML command language" (§2.1). Each component:
//
//   * attaches to mbus under its well-known name,
//   * answers application-level liveness pings while responsive,
//   * is fail-silent: a manifesting failure (FailureBoard) or an in-flight
//     restart makes it simply stop answering (§2.2),
//   * has a process lifecycle driven by the ProcessManager: kill() ->
//     [startup duration] -> complete_start().
//
// Subclasses layer on domain behaviour (orbit estimation, tracking, tuning,
// radio proxying) and functional-readiness rules (peer resync, TCP
// connect).
#pragma once

#include <string>

#include "msg/message.h"
#include "station/calibration.h"
#include "util/time.h"

namespace mercury::station {

class Station;

class Component {
 public:
  Component(Station& station, std::string name, ComponentTiming timing);
  virtual ~Component();

  Component(const Component&) = delete;
  Component& operator=(const Component&) = delete;

  const std::string& name() const { return name_; }
  const ComponentTiming& timing() const { return timing_; }

  /// Process finished startup and is running.
  bool up() const { return up_; }
  bool restarting() const { return restarting_; }

  /// Answers liveness pings: up, attached to the bus, and not manifesting
  /// any active failure.
  bool responsive() const;

  /// Fully ready for station operations. Base: responsive(); subclasses add
  /// readiness conditions (ses/str: peer sync; fedr: pbcom connection).
  virtual bool functional() const { return responsive(); }

  /// Time this component last completed a startup.
  util::TimePoint last_start_time() const { return last_start_; }

  /// Whether the last completed startup was warm (checkpoint reloaded).
  bool warm_started() const { return warm_started_; }

  // --- Process lifecycle (ProcessManager only) ---------------------------
  /// The process is killed; restart begins.
  void kill();
  /// Startup finished; the component is up and re-attached to the bus.
  /// `warm` records that this start reloaded a checkpoint instead of
  /// reconstructing state (ISSUE 3) — readiness protocols consult it (a
  /// warm ses/str resumes its saved session rather than initiating fresh).
  void complete_start(bool warm = false);
  /// Cold boot into the steady state (already up, attached, ready) without
  /// simulating the initial startup transient. Used by the experiment
  /// harness; subclasses mark themselves ready in on_instant_boot().
  void instant_boot();

  /// (Re-)subscribe to mbus; no-op unless up. Called after a bus restart.
  void attach_to_bus();

 protected:
  /// Domain message handler; the ping/pong protocol is handled by the base
  /// before this is called.
  virtual void handle_message(const msg::Message& message) { (void)message; }
  virtual void on_killed() {}
  virtual void on_started() {}
  virtual void on_instant_boot() {}

  /// Send a message from this component over mbus (silently dropped by the
  /// bus when it is down — fail-silent, like a dead TCP write).
  void send(const msg::Message& message);
  std::uint64_t next_seq() { return seq_++; }

  Station& station_;

 private:
  void receive(const msg::Message& message);

  std::string name_;
  ComponentTiming timing_;
  bool up_ = false;
  bool restarting_ = false;
  bool warm_started_ = false;
  std::uint64_t seq_ = 1;
  util::TimePoint last_start_;
};

}  // namespace mercury::station
