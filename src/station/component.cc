#include "station/component.h"

#include "station/station.h"
#include "util/log.h"

namespace mercury::station {

using util::LogLevel;
using util::LogLine;

Component::Component(Station& station, std::string name, ComponentTiming timing)
    : station_(station), name_(std::move(name)), timing_(timing) {}

Component::~Component() = default;

bool Component::responsive() const {
  return up_ && station_.bus().attached(name_) &&
         !station_.board().manifests_at(name_);
}

void Component::kill() {
  up_ = false;
  restarting_ = true;
  warm_started_ = false;
  station_.bus().detach(name_);  // the process died; its TCP endpoint closes
  LogLine(LogLevel::kInfo, station_.sim().now(), name_) << "killed";
  on_killed();
}

void Component::complete_start(bool warm) {
  restarting_ = false;
  up_ = true;
  warm_started_ = warm;
  last_start_ = station_.sim().now();
  attach_to_bus();
  LogLine(LogLevel::kInfo, station_.sim().now(), name_)
      << (warm ? "started (warm)" : "started");
  on_started();
}

void Component::instant_boot() {
  restarting_ = false;
  up_ = true;
  last_start_ = station_.sim().now();
  attach_to_bus();
  on_instant_boot();
}

void Component::attach_to_bus() {
  if (!up_) return;
  station_.bus().attach(name_,
                        [this](const msg::Message& message) { receive(message); });
}

void Component::send(const msg::Message& message) { station_.bus().send(message); }

void Component::receive(const msg::Message& message) {
  // Fail-silence (§2.2): a manifesting or down component consumes the
  // message and never answers.
  if (!responsive()) return;
  if (message.kind == msg::Kind::kPing) {
    send(msg::make_pong(message, name_));
    return;
  }
  handle_message(message);
}

}  // namespace mercury::station
