// StationHealthReporter: emits §7 health beacons for every component.
//
// Models the internal metrics a real component would digest into a beacon:
//
//   * memory grows linearly with uptime at a per-component leak rate —
//     "pbcom ages" (§4.2) and the buggy translator (fedr/fedrcom) leaks
//     fastest; a restart resets it (the heart of software rejuvenation);
//   * queue depth and internal latency wobble around a baseline;
//   * connectivity checks come from the real coordination state (fedr's
//     TCP link, ses/str sync, pbcom's serial port);
//   * warnings fire when memory crosses the component's warn level;
//   * a hard-failure flag can be raised for a component (tests and the
//     radio-hardware scenario).
//
// Crashed or restarting components emit nothing — beacons are a liveness
// signal too.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "sim/simulator.h"
#include "station/station.h"
#include "util/rng.h"
#include "util/time.h"

namespace mercury::station {

struct ResourceModel {
  double base_mb = 48.0;
  double leak_mb_per_minute = 0.2;
  double warn_mb = 200.0;
  double queue_base = 4.0;
  double latency_base_ms = 2.0;
};

class StationHealthReporter {
 public:
  StationHealthReporter(Station& station, std::string monitor_endpoint,
                        util::Duration period = util::Duration::seconds(5.0));
  ~StationHealthReporter();

  StationHealthReporter(const StationHealthReporter&) = delete;
  StationHealthReporter& operator=(const StationHealthReporter&) = delete;

  void start();

  /// Override the resource model for one component.
  void set_model(const std::string& component, ResourceModel model);
  const ResourceModel& model(const std::string& component) const;

  /// Raise/clear the hard-failure flag in a component's beacons.
  void flag_hard_failure(const std::string& component, bool flagged = true);

  std::uint64_t beacons_sent() const { return beacons_sent_; }

  /// The memory figure the next beacon would carry (for tests).
  double current_memory_mb(const std::string& component) const;

 private:
  void emit_all();

  Station& station_;
  std::string monitor_endpoint_;
  util::Duration period_;
  util::Rng rng_;
  std::map<std::string, ResourceModel> models_;
  std::map<std::string, bool> hard_flags_;
  std::map<std::string, std::uint64_t> seqs_;
  std::unique_ptr<sim::PeriodicTask> task_;
  std::uint64_t beacons_sent_ = 0;
};

}  // namespace mercury::station
