// Experiment harness: the paper's §4 methodology, automated.
//
// "To measure the effect this transformation has on system recovery time,
// we cause the failure of each component (using a SIGKILL signal) and
// measure how long the system takes to recover. We log the time when the
// signal is sent; once the component determines it is functionally ready,
// it logs a timestamped message. The difference between these two times is
// what we consider to be the recovery time." (§4.1; 100 trials per cell.)
//
// MercuryRig assembles a complete system — station + FD + REC + oracle —
// for one (tree, oracle) configuration; run_trial injects one failure at a
// uniformly random ping phase and runs the simulation until the station is
// fully functional again.
#pragma once

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bus/dedicated_link.h"
#include "obs/trace.h"
#include "core/availability.h"
#include "core/failure.h"
#include "core/failure_detector.h"
#include "core/mercury_trees.h"
#include "core/oracle.h"
#include "core/recoverer.h"
#include "sim/simulator.h"
#include "station/station.h"
#include "util/stats.h"
#include "util/time.h"
#include "workload/workload.h"

namespace mercury::station {

enum class OracleKind {
  kHeuristic,       ///< leaf-first + escalation (no failure-model knowledge)
  kPerfect,         ///< minimal restart policy (A_oracle)
  kFaultyPerfect,   ///< perfect + guess-too-low/high mistakes (§4.4)
  kLearning,        ///< online f_ci estimation (§7)
};

std::string to_string(OracleKind kind);

enum class FailureMode {
  kCrash,              ///< fail-silent crash of `fail_component` (SIGKILL)
  kJointFedrPbcom,     ///< manifests in pbcom, curable only by {fedr,pbcom}
  kStaleAttachment,    ///< soft-curable transient at `fail_component` (§7)
};

struct TrialSpec {
  core::MercuryTree tree = core::MercuryTree::kTreeIV;
  OracleKind oracle = OracleKind::kPerfect;
  double faulty_p_low = 0.3;
  double faulty_p_high = 0.0;
  std::string fail_component;
  FailureMode mode = FailureMode::kCrash;
  std::uint64_t seed = 1;
  Calibration cal = default_calibration();
  util::Duration warmup = util::Duration::seconds(3.0);
  util::Duration timeout = util::Duration::seconds(180.0);
  /// Domain chatter (ephemerides/tuning) is off in timing trials: it does
  /// not affect recovery and costs events.
  bool enable_domain_behavior = false;
  /// Recursive recovery (§7): REC tries the component's soft procedure
  /// before any restart.
  bool enable_soft_recovery = false;
  /// FD suspicion threshold (consecutive missed pings before reporting).
  int fd_misses_before_report = 1;
  /// Per-delivery mbus loss probability (robustness ablation).
  double bus_loss_probability = 0.0;
  /// Persist an oracle across trials (e.g. LearningOracle). Non-owning;
  /// must outlive the trial and match the tree.
  core::Oracle* oracle_override = nullptr;

  // --- Restart-path hardening & faults (ISSUE 2) --------------------------
  /// Harden REC's restart path: per-restart deadline (sized from the
  /// calibration's worst-case contended startup via
  /// hardened_restart_deadline), exponential same-cell backoff, and an
  /// attempt budget per failure chain. Off by default so legacy trials
  /// reproduce the seed's numbers bit-for-bit.
  bool harden_restart_path = false;
  /// Attempt budget installed when hardening (restarts per failure chain
  /// before parking as a hard failure).
  int max_attempts_per_chain = 8;
  /// Backoff base installed when hardening (zero keeps backoff off even
  /// when hardened).
  util::Duration backoff_base = util::Duration::seconds(0.5);
  /// Restart-time faults installed on the board before the trial: each
  /// startup attempt of a listed component may hang or crash per its spec.
  std::map<std::string, core::RestartFaultSpec> restart_faults;

  // --- Checkpointed warm restarts (ISSUE 3) -------------------------------
  /// Enable the station's checkpoint policy: components snapshot soft state
  /// and restarts offer valid snapshots back as warm starts. Off by default
  /// so legacy trials reproduce the seed's cold-path numbers bit-for-bit.
  bool enable_checkpoints = false;
  util::Duration checkpoint_ttl = util::Duration::minutes(10.0);
  /// Damage applied to the failed component's checkpoint at injection time
  /// (kPoison needs harden_restart_path: the warm attempt crashes and only
  /// the restart deadline notices; kKill drops the tier's copy outright).
  enum class CheckpointDamage { kNone, kCorrupt, kPoison, kStale, kKill };
  /// Targets the victim's *local* (L0) snapshot (legacy knob).
  CheckpointDamage checkpoint_damage = CheckpointDamage::kNone;

  // --- Tiered checkpoint storage (ISSUE 7) --------------------------------
  /// Enable the partner-replica (L1) tier: each component's snapshot is
  /// also held in a buddy chosen from the restart tree
  /// (core::choose_partners), and survives the victim's own crash.
  bool checkpoint_l1 = false;
  /// Enable the stable file-backed (L2) tier.
  bool checkpoint_l2 = false;
  /// Damage applied to the victim's partner-replica / stable copies at
  /// injection time (same semantics as checkpoint_damage).
  CheckpointDamage checkpoint_l1_damage = CheckpointDamage::kNone;
  CheckpointDamage checkpoint_l2_damage = CheckpointDamage::kNone;
  /// Correlated failure: the injected fault also crashes the victim's L1
  /// replica host (whole-group / coupled-component loss) — the replica dies
  /// with its host, leaving only L2 between the victim and a cold start.
  bool fail_partner_too = false;

  // --- Parallel recovery (ISSUE 8) ----------------------------------------
  /// REC dispatch policy: serial (legacy, one action at a time), DAG
  /// (disjoint cells restart concurrently, FIFO queue), or on-demand
  /// (out-of-order queue scan). Always plumbed through; the default
  /// reproduces legacy behaviour bit-for-bit.
  core::DispatchMode dispatch = core::DispatchMode::kSerial;
  /// Additional crashes after the primary injection: `component` is felled
  /// `delay` after the primary instant. Multi-fault scenarios are what give
  /// the parallel scheduler disjoint cells to work concurrently.
  struct ExtraFault {
    std::string component;
    util::Duration delay = util::Duration::zero();
  };
  std::vector<ExtraFault> extra_faults;

  // --- Client traffic & availability (ISSUE 9) ----------------------------
  /// Continuous client workload riding through the trial: sessions attach to
  /// mbus at boot, issue open-loop requests across the failure, and resolve
  /// every request as served or lost (workload::WorkloadDriver). Enabling it
  /// also turns on the bus's typed mid-restart nacks, so clients get fast
  /// "restarting" rejections instead of silent drops.
  struct Traffic {
    bool enabled = false;
    int command_sessions = 8;
    int telemetry_sessions = 4;
    util::Duration mean_interarrival = util::Duration::millis(200.0);
    util::Duration request_timeout = util::Duration::millis(400.0);
    util::Duration retry_backoff = util::Duration::millis(100.0);
    int max_attempts = 4;
    /// Emit per-request "traffic.request" spans (checker-gated trials).
    bool trace_requests = false;
    /// Keep the deterministic per-request outcome log on the result
    /// (byte-identity tests; costs memory on big trials).
    bool keep_outcome_log = false;
  };
  Traffic traffic;
  /// Traffic-driven on-demand recovery (requires dispatch == kOnDemand):
  /// after the minimal phase restores the serving core, remaining cells
  /// restart lazily — a client request touching a queued cell promotes its
  /// restart to the DAG front; untouched cells drain in the background.
  bool traffic_driven = false;
  util::Duration lazy_drain_interval = util::Duration::millis(500.0);
};

/// Deadline for one restart action under hardening: the calibration's worst
/// component startup (mean + 3 sigma) under full-system contention, with a
/// 1.5x margin. A correct restart essentially never trips it; a hung one
/// always does.
util::Duration hardened_restart_deadline(const Calibration& cal,
                                         const std::vector<std::string>& components);

struct TrialResult {
  util::Duration recovery = util::Duration::zero();
  int restarts = 0;
  int escalations = 0;
  bool hard_failure = false;
  bool timed_out = false;
  /// Restart actions abandoned by the per-restart deadline (hardened runs).
  int restart_timeouts = 0;
  /// Restart attempts delayed by same-cell backoff (hardened runs).
  int backoffs = 0;
  /// Components REC parked and permanently masked; non-empty implies
  /// hard_failure and the station ended the trial operating degraded.
  std::vector<std::string> parked;
  /// After parking, did everything outside the parked set come back up
  /// (Station::functional_except)? Degraded-but-operating, per ISSUE 2's
  /// availability accounting. Always false when nothing was parked, and
  /// when the parked set includes mbus (nothing works without the bus).
  bool degraded_functional = false;
  /// Startup attempts begun warm / forced cold despite a warm path / died
  /// on poisoned checkpoint state (checkpointed trials only; see
  /// ProcessManager's counters).
  int warm_restarts = 0;
  int cold_fallbacks = 0;
  int checkpoint_crashes = 0;
  /// Warm starts served per tier (L0 local / L1 partner / L2 stable) and
  /// tier copies repopulated after warm recovery (ISSUE 7).
  int warm_hits_l0 = 0;
  int warm_hits_l1 = 0;
  int warm_hits_l2 = 0;
  int tier_rebuilds = 0;
  /// Peak simultaneously in-flight restart actions (always <= 1 under
  /// serial dispatch) and actions absorbed by a covering escalation
  /// (ISSUE 8).
  int max_concurrent_restarts = 0;
  int absorbed_restarts = 0;
  /// Client-traffic availability figures (traffic-enabled trials only):
  /// counts, latency percentiles, goodput dip, per-route reopen latency.
  core::TrafficSummary traffic;
  /// Queued restarts promoted by a client-request touch / dispatched by the
  /// background lazy drain (traffic-driven on-demand trials).
  int touch_promotions = 0;
  int lazy_drains = 0;
  /// Deterministic per-request outcome log (traffic.keep_outcome_log only).
  std::string traffic_outcome_log;
};

/// Client routes the workload polls under `tree`: the command (radio) chain
/// and the telemetry (data) chain, tree-aware (fedrcom vs fedr+pbcom).
std::vector<std::string> command_routes(core::MercuryTree tree);
std::vector<std::string> telemetry_routes(core::MercuryTree tree);

/// A fully wired Mercury system. Exposes the pieces for tests and examples.
class MercuryRig {
 public:
  MercuryRig(sim::Simulator& sim, const TrialSpec& spec);

  Station& station() { return *station_; }
  core::FailureDetector& fd() { return *fd_; }
  core::Recoverer& rec() { return *rec_; }
  core::Oracle& oracle() { return *active_oracle_; }
  bus::DedicatedLink& link() { return *link_; }
  /// The client workload, present when spec.traffic.enabled (not started;
  /// run_trial starts it with the station).
  workload::WorkloadDriver* workload() { return workload_.get(); }

  /// boot_instant + start FD/REC + mutual monitoring.
  void start();

 private:
  sim::Simulator& sim_;
  std::unique_ptr<Station> station_;
  std::unique_ptr<bus::DedicatedLink> link_;
  std::unique_ptr<core::PerfectOracle> perfect_oracle_;
  std::unique_ptr<core::Oracle> owned_oracle_;
  core::Oracle* active_oracle_ = nullptr;
  std::unique_ptr<core::FailureDetector> fd_;
  std::unique_ptr<core::Recoverer> rec_;
  std::unique_ptr<workload::WorkloadDriver> workload_;
  Calibration cal_;
};

/// One §4 measurement: inject, recover, report.
TrialResult run_trial(const TrialSpec& spec);

/// run_trial under a private TraceRecorder (the calling thread's ambient
/// recorder, if any, is shelved for the duration): returns the result plus
/// exactly this trial's events. For determinism comparisons and
/// trace-invariant tests; the ambient trace is left untouched.
struct TracedTrial {
  TrialResult result;
  std::vector<obs::TraceEvent> events;
};
TracedTrial run_trial_traced(const TrialSpec& spec);

/// One trial per spec, executed on the parallel experiment runner
/// (exp::ExperimentRunner, jobs from $MERCURY_JOBS). Results are returned
/// in spec order and traces are merged into the calling thread's recorder
/// in spec order, so the output is byte-identical to a serial loop of
/// run_trial calls regardless of the job count. Specs carry their own
/// seeds; the runner adds no seed derivation here. If any spec has an
/// oracle_override the whole batch runs serially in order on the calling
/// thread — a persistent oracle is order-dependent mutable state shared
/// across trials.
std::vector<TrialResult> run_trial_batch(const std::vector<TrialSpec>& specs);

/// `trials` measurements with seeds spec.seed, spec.seed+1, ...; returns
/// recovery times in seconds. Timed-out or hard-failed trials are counted
/// at the timeout value (and are a red flag — tests assert they don't
/// happen). Runs on the parallel experiment runner via run_trial_batch
/// (same numbers and traces as the historical serial loop, any job count).
util::SampleStats run_trials(TrialSpec spec, int trials);

/// run_trials over a whole grid of cells at once: for each spec, `trials`
/// measurements with seeds spec.seed + i. The specs × trials matrix is
/// flattened spec-major into one run_trial_batch call, so a multi-cell
/// bench sweep keeps every core busy instead of parallelising only within
/// one cell. Returns one SampleStats per spec, in spec order.
std::vector<util::SampleStats> run_trials_grid(const std::vector<TrialSpec>& specs,
                                               int trials);

}  // namespace mercury::station
