#include "station/health_reporter.h"

#include "core/health.h"
#include "core/mercury_trees.h"
#include "util/strings.h"

namespace mercury::station {

namespace names = core::component_names;

StationHealthReporter::StationHealthReporter(Station& station,
                                             std::string monitor_endpoint,
                                             util::Duration period)
    : station_(station),
      monitor_endpoint_(std::move(monitor_endpoint)),
      period_(period),
      rng_(station.sim().rng().fork("health-reporter")) {
  // Defaults: the failure-prone translator leaks hard; the serial proxy
  // ages slowly; the rest are well behaved.
  ResourceModel leaky;
  leaky.leak_mb_per_minute = 8.0;
  models_[names::kFedr] = leaky;
  models_[names::kFedrcom] = leaky;

  ResourceModel aging;
  aging.leak_mb_per_minute = 1.0;
  models_[names::kPbcom] = aging;
}

StationHealthReporter::~StationHealthReporter() = default;

void StationHealthReporter::start() {
  task_ = std::make_unique<sim::PeriodicTask>(station_.sim(), "health.emit",
                                              period_, [this] { emit_all(); });
  task_->start();
}

void StationHealthReporter::set_model(const std::string& component,
                                      ResourceModel model) {
  models_[component] = model;
}

const ResourceModel& StationHealthReporter::model(
    const std::string& component) const {
  static const ResourceModel kDefault;
  const auto it = models_.find(component);
  return it != models_.end() ? it->second : kDefault;
}

void StationHealthReporter::flag_hard_failure(const std::string& component,
                                              bool flagged) {
  hard_flags_[component] = flagged;
}

double StationHealthReporter::current_memory_mb(
    const std::string& component) const {
  const Component* c = station_.component(component);
  if (c == nullptr || !c->up()) return 0.0;
  const ResourceModel& m = model(component);
  const double uptime_min =
      (station_.sim().now() - c->last_start_time()).to_seconds() / 60.0;
  return m.base_mb + m.leak_mb_per_minute * uptime_min;
}

void StationHealthReporter::emit_all() {
  for (const auto& name : station_.component_names()) {
    const Component* component = station_.component(name);
    // Fail-silent components emit no beacons; the beacon stream itself is
    // a liveness signal.
    if (!component->responsive()) continue;

    const ResourceModel& m = model(name);
    core::HealthBeacon beacon;
    beacon.component = name;
    beacon.seq = ++seqs_[name];
    beacon.uptime_s =
        (station_.sim().now() - component->last_start_time()).to_seconds();
    beacon.memory_mb = m.base_mb + m.leak_mb_per_minute * beacon.uptime_s / 60.0 +
                       rng_.normal(0.0, 0.5);
    beacon.queue_depth = std::max(0.0, m.queue_base + rng_.normal(0.0, 1.0));
    beacon.internal_latency_ms =
        std::max(0.1, m.latency_base_ms + rng_.normal(0.0, 0.3));

    // Connectivity checks reflect the real coordination state.
    beacon.connectivity_ok = true;
    if (name == names::kFedr && station_.config().split_fedrcom) {
      beacon.connectivity_ok = station_.fedr_pbcom_link().connected();
    } else if (name == names::kSes || name == names::kStr) {
      beacon.connectivity_ok = station_.ses_str_sync().synced(name);
    } else if (name == names::kPbcom || name == names::kFedrcom) {
      beacon.connectivity_ok = station_.serial_port().is_open();
    }
    beacon.consistency_ok = true;

    if (beacon.memory_mb > m.warn_mb) {
      beacon.warnings.push_back("memory above warn level (" +
                                util::format_fixed(beacon.memory_mb, 1) + " MB)");
    }
    const auto hard = hard_flags_.find(name);
    beacon.hard_failure_suspected = hard != hard_flags_.end() && hard->second;

    station_.bus().send(core::encode_beacon(beacon, monitor_endpoint_));
    ++beacons_sent_;
  }
}

}  // namespace mercury::station
