// ProcessManager: the station's implementation of core::ProcessControl.
//
// Restarting a group kills every member, then schedules each member's
// startup completion after its calibrated duration, inflated by the
// contention factor 1 + slope * max(0, concurrent - 2) (§4.1: "a whole
// system restart causes contention for resources that is not present when
// restarting just one component"). On each completion the FailureBoard is
// told, which is what cures failures whose cure sets are now satisfied.
//
// The restart path is itself a fault domain (ISSUE 2): each startup attempt
// consults the board's RestartFaultSpec for the component and may *hang*
// (the completion never fires) or *crash* (the attempt ends with the
// component still down). Neither completes the member's group, so a hardened
// recoverer must notice via its per-restart deadline. A later restart_group
// naming an in-flight component SUPERSEDES the stale attempt: the component
// is re-killed and re-started fresh, and the abandoned group completes (its
// initiator guards against stale completions). This replaces the old
// fold-into-existing-group behavior, which would chain a retry onto exactly
// the attempt that hung.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/process_control.h"
#include "util/rng.h"
#include "util/time.h"

namespace mercury::station {

class Station;

class ProcessManager : public core::ProcessControl {
 public:
  explicit ProcessManager(Station& station);

  std::vector<std::string> component_names() const override;
  void restart_group(const std::vector<std::string>& names,
                     std::function<void()> on_complete) override;
  bool restart_in_progress() const override { return restarting_count_ > 0; }
  std::vector<std::string> restarting_now() const override;

  bool supports_soft_recovery() const override { return true; }
  void soft_recover(const std::string& component,
                    std::function<void()> on_complete) override;
  void discard_checkpoints(const std::vector<std::string>& names) override;
  void note_parked(const std::vector<std::string>& names) override;

  /// Startup attempts begun (successful or not; includes hung/crashed ones).
  std::uint64_t restarts_performed() const { return restarts_performed_; }
  std::uint64_t groups_restarted() const { return groups_restarted_; }

  // --- Checkpointed warm restarts (ISSUE 3) -------------------------------
  /// Startup attempts begun warm (valid checkpoint offered back).
  std::uint64_t warm_restarts() const { return warm_restarts_; }
  /// Attempts where the component has a warm path but validation (or fault
  /// suspicion) forced the cold path. Only counted while the policy is on.
  std::uint64_t cold_fallbacks() const { return cold_fallbacks_; }
  /// Warm attempts that died mid-startup on undetectably poisoned state.
  std::uint64_t checkpoint_crashes() const { return checkpoint_crashes_; }

 private:
  struct Group {
    std::size_t remaining = 0;
    std::function<void()> on_complete;
  };
  /// Per-component process bookkeeping across restart attempts.
  struct Proc {
    bool restarting = false;
    /// Bumped on every (re-)kill; scheduled completion/crash events carry
    /// the epoch they belong to and no-op once superseded.
    std::uint64_t epoch = 0;
    /// Startup attempts since the last successful start (drives the
    /// deterministic first-k restart faults).
    int attempts = 0;
    /// Group currently owning this component's restart (0 = none).
    std::uint64_t group = 0;
    /// Open obs span for the in-flight attempt (0 = none).
    std::uint64_t span = 0;
  };

  /// Kill + schedule one startup attempt of `name` under `contention`,
  /// applying the board's restart-fault spec.
  void begin_attempt(const std::string& name, double contention);
  /// Remove `name` from its owning group's accounting (supersession); fires
  /// the group's on_complete if it drains.
  void detach_from_group(Proc& proc);
  void finish_group_member(std::uint64_t group_id);

  Station& station_;
  util::Rng rng_;
  std::map<std::string, Proc> procs_;
  int restarting_count_ = 0;
  std::uint64_t restarts_performed_ = 0;
  std::uint64_t groups_restarted_ = 0;
  std::uint64_t warm_restarts_ = 0;
  std::uint64_t cold_fallbacks_ = 0;
  std::uint64_t checkpoint_crashes_ = 0;
  std::uint64_t next_group_ = 1;
  std::map<std::uint64_t, Group> groups_;
};

}  // namespace mercury::station
