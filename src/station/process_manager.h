// ProcessManager: the station's implementation of core::ProcessControl.
//
// Restarting a group kills every member, then schedules each member's
// startup completion after its calibrated duration, inflated by the
// contention factor 1 + slope * max(0, concurrent - 2) (§4.1: "a whole
// system restart causes contention for resources that is not present when
// restarting just one component"). On each completion the FailureBoard is
// told, which is what cures failures whose cure sets are now satisfied.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/process_control.h"
#include "util/rng.h"
#include "util/time.h"

namespace mercury::station {

class Station;

class ProcessManager : public core::ProcessControl {
 public:
  explicit ProcessManager(Station& station);

  std::vector<std::string> component_names() const override;
  void restart_group(const std::vector<std::string>& names,
                     std::function<void()> on_complete) override;
  bool restart_in_progress() const override { return restarting_count_ > 0; }
  std::vector<std::string> restarting_now() const override;

  bool supports_soft_recovery() const override { return true; }
  void soft_recover(const std::string& component,
                    std::function<void()> on_complete) override;

  std::uint64_t restarts_performed() const { return restarts_performed_; }
  std::uint64_t groups_restarted() const { return groups_restarted_; }

 private:
  struct Group {
    std::size_t remaining = 0;
    std::function<void()> on_complete;
  };

  Station& station_;
  util::Rng rng_;
  std::map<std::string, bool> restarting_;  // component -> in-flight
  int restarting_count_ = 0;
  std::uint64_t restarts_performed_ = 0;
  std::uint64_t groups_restarted_ = 0;
  std::uint64_t next_group_ = 1;
  std::map<std::uint64_t, Group> groups_;
};

}  // namespace mercury::station
