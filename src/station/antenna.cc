#include "station/antenna.h"

#include <algorithm>
#include <cmath>

#include "orbit/elements.h"

namespace mercury::station {

Antenna::Antenna(AntennaConfig config) : config_(config) {
  az_ = target_az_ = config_.park_azimuth_deg;
  el_ = target_el_ = config_.park_elevation_deg;
}

void Antenna::point(double azimuth_deg, double elevation_deg, util::TimePoint now) {
  settle(now);
  target_az_ = azimuth_deg;
  target_el_ = std::clamp(elevation_deg, 0.0, 90.0);
}

void Antenna::park(util::TimePoint now) {
  point(config_.park_azimuth_deg, config_.park_elevation_deg, now);
}

double Antenna::step_toward(double from, double to, double max_step,
                            bool wrap_azimuth) {
  double delta = to - from;
  if (wrap_azimuth) {
    // Take the short way around the azimuth circle.
    while (delta > 180.0) delta -= 360.0;
    while (delta < -180.0) delta += 360.0;
  }
  if (std::abs(delta) <= max_step) return to;
  double moved = from + (delta > 0 ? max_step : -max_step);
  if (wrap_azimuth) {
    while (moved >= 360.0) moved -= 360.0;
    while (moved < 0.0) moved += 360.0;
  }
  return moved;
}

void Antenna::settle(util::TimePoint now) const {
  const double dt = (now - last_update_).to_seconds();
  last_update_ = now;
  if (dt <= 0.0) return;
  const double max_step = config_.max_slew_deg_per_sec * dt;
  az_ = step_toward(az_, target_az_, max_step, /*wrap_azimuth=*/true);
  el_ = step_toward(el_, target_el_, max_step, /*wrap_azimuth=*/false);
}

double Antenna::azimuth_deg(util::TimePoint now) const {
  settle(now);
  return az_;
}

double Antenna::elevation_deg(util::TimePoint now) const {
  settle(now);
  return el_;
}

double Antenna::pointing_error_deg(util::TimePoint now) const {
  settle(now);
  // Angular distance between (az_, el_) and target on the sphere.
  const double az1 = orbit::deg_to_rad(az_);
  const double el1 = orbit::deg_to_rad(el_);
  const double az2 = orbit::deg_to_rad(target_az_);
  const double el2 = orbit::deg_to_rad(target_el_);
  const double cos_angle = std::sin(el1) * std::sin(el2) +
                           std::cos(el1) * std::cos(el2) * std::cos(az1 - az2);
  return orbit::rad_to_deg(std::acos(std::clamp(cos_angle, -1.0, 1.0)));
}

}  // namespace mercury::station
