// Pass schedule & maintenance windows.
//
// §5.2: "not all downtime is the same" — downtime during passes costs
// science data; the gaps between passes are where planned work (proactive
// rejuvenation, §7 health beacons) belongs. A PassSchedule holds the
// predicted passes for one or more satellites over a horizon and answers
// the operational questions: are we in (or about to enter) a pass? when is
// the next one? is the maintenance window open, given how long the planned
// work takes?
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "orbit/pass_predictor.h"
#include "util/time.h"

namespace mercury::station {

struct ScheduledPass {
  std::string satellite;
  orbit::Pass pass;
};

class PassSchedule {
 public:
  PassSchedule() = default;

  /// Merge `satellite`'s predicted passes into the schedule (kept sorted by
  /// AOS).
  void add_passes(const std::string& satellite, const std::vector<orbit::Pass>& passes);

  const std::vector<ScheduledPass>& passes() const { return passes_; }
  std::size_t pass_count() const { return passes_.size(); }

  /// True while some pass is in progress at `t`.
  bool in_pass(util::TimePoint t) const;

  /// The pass in progress at `t`, if any.
  std::optional<ScheduledPass> current_pass(util::TimePoint t) const;

  /// The next pass with AOS strictly after `t` (or the one in progress).
  std::optional<ScheduledPass> next_pass(util::TimePoint t) const;

  /// Maintenance window check (§5.2): open iff no pass is in progress and
  /// the next AOS is at least `required` away — enough room to finish the
  /// planned work (plus margin) before the satellite rises.
  bool window_open(util::TimePoint t, util::Duration required) const;

  /// Total pass time in [from, to) — the "expensive" seconds.
  util::Duration pass_time_in(util::TimePoint from, util::TimePoint to) const;

  /// Build a one-day schedule for the default Mercury satellite over the
  /// given site.
  static PassSchedule for_satellite(const std::string& name,
                                    const orbit::GroundStation& site,
                                    const orbit::Propagator& satellite,
                                    util::TimePoint from, util::TimePoint to);

 private:
  std::vector<ScheduledPass> passes_;  // sorted by AOS
};

}  // namespace mercury::station
