#include "station/pass_schedule.h"

#include <algorithm>

namespace mercury::station {

using util::Duration;
using util::TimePoint;

void PassSchedule::add_passes(const std::string& satellite,
                              const std::vector<orbit::Pass>& passes) {
  for (const auto& pass : passes) {
    passes_.push_back(ScheduledPass{satellite, pass});
  }
  std::sort(passes_.begin(), passes_.end(),
            [](const ScheduledPass& a, const ScheduledPass& b) {
              return a.pass.aos < b.pass.aos;
            });
}

bool PassSchedule::in_pass(TimePoint t) const {
  return current_pass(t).has_value();
}

std::optional<ScheduledPass> PassSchedule::current_pass(TimePoint t) const {
  for (const auto& scheduled : passes_) {
    if (scheduled.pass.aos <= t && t < scheduled.pass.los) return scheduled;
    if (scheduled.pass.aos > t) break;  // sorted: nothing later can contain t
  }
  return std::nullopt;
}

std::optional<ScheduledPass> PassSchedule::next_pass(TimePoint t) const {
  if (auto current = current_pass(t)) return current;
  for (const auto& scheduled : passes_) {
    if (scheduled.pass.aos > t) return scheduled;
  }
  return std::nullopt;
}

bool PassSchedule::window_open(TimePoint t, Duration required) const {
  if (in_pass(t)) return false;
  for (const auto& scheduled : passes_) {
    if (scheduled.pass.aos <= t) continue;
    return scheduled.pass.aos - t >= required;
  }
  return true;  // no more passes on the horizon
}

Duration PassSchedule::pass_time_in(TimePoint from, TimePoint to) const {
  Duration total = Duration::zero();
  for (const auto& scheduled : passes_) {
    const TimePoint start = std::max(scheduled.pass.aos, from);
    const TimePoint end = std::min(scheduled.pass.los, to);
    if (end > start) total += end - start;
  }
  return total;
}

PassSchedule PassSchedule::for_satellite(const std::string& name,
                                         const orbit::GroundStation& site,
                                         const orbit::Propagator& satellite,
                                         TimePoint from, TimePoint to) {
  PassSchedule schedule;
  schedule.add_passes(name, orbit::predict_passes(site, satellite, from, to));
  return schedule;
}

}  // namespace mercury::station
