#include "station/process_manager.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "station/station.h"
#include "util/log.h"
#include "util/strings.h"

namespace mercury::station {

using util::Duration;
using util::LogLevel;
using util::LogLine;

ProcessManager::ProcessManager(Station& station)
    : station_(station), rng_(station.sim().rng().fork("process-manager")) {}

std::vector<std::string> ProcessManager::component_names() const {
  return station_.component_names();
}

std::vector<std::string> ProcessManager::restarting_now() const {
  std::vector<std::string> names;
  for (const auto& [name, proc] : procs_) {
    if (proc.restarting) names.push_back(name);
  }
  return names;
}

void ProcessManager::soft_recover(const std::string& component,
                                  std::function<void()> on_complete) {
  assert(station_.component(component) != nullptr &&
         "soft_recover: unknown component");
  const std::string name = component;
  const std::uint64_t span = obs::begin_span(
      station_.sim().now(), "restart", "soft:" + name, "pm");
  station_.sim().schedule_after(
      station_.cal().soft_recovery_duration, "soft-recover:" + name,
      [this, name, span, on_complete = std::move(on_complete)] {
        Component* target = station_.component(name);
        // A kill that raced in supersedes the soft procedure; the restart
        // path owns recovery now.
        if (target != nullptr && target->up() && !target->restarting()) {
          target->attach_to_bus();
          station_.board().on_soft_recovery_complete(name, station_.sim().now());
        }
        obs::end_span(station_.sim().now(), span);
        if (on_complete) on_complete();
      });
}

void ProcessManager::discard_checkpoints(const std::vector<std::string>& names) {
  // Tier-aware shed (ISSUE 7): fault suspicion condemns the *local* snapshot
  // — it may embody exactly the state that wedged the component — but not
  // the partner replica or stable copy, which did not feed the failed
  // attempt. The retry's tier walk still reaches them before going cold.
  for (const auto& name : names) {
    if (station_.checkpoints().suspect_discard(name)) {
      obs::incr("checkpoint.suspect_discards");
      LogLine(LogLevel::kWarn, station_.sim().now(), name)
          << "local checkpoint discarded (restart-path fault suspected)";
    }
  }
}

void ProcessManager::note_parked(const std::vector<std::string>& names) {
  // A parked host never restarts: replicas it hosted are unreachable, and
  // components it was replica host for must be re-partnered so their next
  // failure still warm-hits L1.
  for (const auto& name : names) {
    const std::size_t reassigned =
        station_.checkpoints().on_host_parked(name, station_.sim().now());
    if (reassigned > 0) {
      obs::incr("checkpoint.parked_reassigns", reassigned);
      LogLine(LogLevel::kWarn, station_.sim().now(), name)
          << "parked replica host: " << reassigned
          << " hosted checkpoint replica(s) reassigned";
    }
  }
}

void ProcessManager::detach_from_group(Proc& proc) {
  if (proc.group == 0) return;
  const std::uint64_t group_id = proc.group;
  proc.group = 0;
  finish_group_member(group_id);
}

void ProcessManager::finish_group_member(std::uint64_t group_id) {
  const auto it = groups_.find(group_id);
  assert(it != groups_.end());
  if (--it->second.remaining == 0) {
    auto on_complete = std::move(it->second.on_complete);
    groups_.erase(it);
    if (on_complete) on_complete();
  }
}

void ProcessManager::restart_group(const std::vector<std::string>& names,
                                   std::function<void()> on_complete) {
  assert(!names.empty());
  const std::uint64_t group_id = next_group_++;
  Group& group = groups_[group_id];
  group.on_complete = std::move(on_complete);
  group.remaining = names.size();
  ++groups_restarted_;

  // Kill phase: everything in the group dies first (REC kills the whole
  // subtree before bringing it back). A member already in flight from an
  // earlier group is superseded: its stale attempt (possibly hung or
  // crashed) is voided by the epoch bump and this group takes ownership —
  // the abandoned group drains and completes, which its initiator must
  // guard against (stale action ids in the recoverer).
  for (const auto& name : names) {
    Component* component = station_.component(name);
    assert(component != nullptr && "restart_group: unknown component");
    (void)component;
    Proc& proc = procs_[name];
    if (proc.restarting) {
      if (proc.span != 0) {
        obs::end_span(station_.sim().now(), proc.span,
                      {{"outcome", "superseded"}});
        proc.span = 0;
      }
      detach_from_group(proc);
    } else {
      proc.restarting = true;
      ++restarting_count_;
    }
    proc.group = group_id;
    ++proc.epoch;
    station_.component(name)->kill();
    // The kill detached the endpoint; mark it mid-restart on the bus so
    // deliveries can answer with a typed "restarting" error (and fire the
    // traffic touch listener) instead of vanishing. The mark clears itself
    // when the restarted component re-attaches.
    station_.bus().note_restarting(name, proc.epoch);
    // Partner replicas live in their host's memory: a group restart that
    // kills the host loses every L1 copy it held (the correlated-failure
    // case — a whole-group restart takes the buddy down too). The local
    // and stable tiers survive process death by construction.
    if (station_.config().checkpoints.enabled) {
      station_.checkpoints().on_host_down(name);
    }
  }

  // Contention (§4.1): concurrent restarts slow each other down. The factor
  // is computed once per group from the total number of in-flight restarts.
  const double contention =
      1.0 + station_.cal().contention_slope * std::max(0, restarting_count_ - 2);

  for (const auto& name : names) begin_attempt(name, contention);
}

void ProcessManager::begin_attempt(const std::string& name, double contention) {
  Component* component = station_.component(name);
  Proc& proc = procs_[name];
  const std::uint64_t epoch = proc.epoch;
  const int attempt = ++proc.attempts;
  ++restarts_performed_;

  // Restart-time faults (ISSUE 2). Deterministic first-k counters trump the
  // probabilistic draws; hang trumps crash. Draws only happen for components
  // with an active spec, so fault-free runs consume no extra randomness.
  const core::RestartFaultSpec& faults = station_.board().restart_faults(name);
  bool hang = false;
  bool crash = false;
  if (faults.active()) {
    if (attempt <= faults.hang_first_attempts) {
      hang = true;
    } else if (attempt - faults.hang_first_attempts <=
               faults.fail_first_attempts) {
      crash = true;
    } else {
      if (faults.hang_prob > 0.0 && rng_.chance(faults.hang_prob)) hang = true;
      if (!hang && faults.crash_prob > 0.0 && rng_.chance(faults.crash_prob)) {
        crash = true;
      }
    }
  }

  // Checkpoint offer (ISSUE 3, tiered by ISSUE 7): with the policy on, a
  // component that has a warm path walks the checkpoint tiers newest-first
  // (L0 local, L1 partner replica, L2 stable) and the first valid snapshot
  // starts it warm — the calibrated warm duration models respawn + reload,
  // scaled by the serving tier's reload factor, skipping the negotiation /
  // resync that dominates the cold mean. Cold fallbacks happen when the
  // whole walk misses:
  //   * attempt > 1 means a previous attempt of this chain already failed;
  //     the *local* snapshot is fault-suspected and shed unread, but the
  //     partner and stable tiers did not feed the failed attempt and are
  //     still consulted before conceding a cold start;
  //   * a corrupt or version-skewed tier copy is discarded as the walk
  //     passes it, never retried; the walk continues to the next tier;
  //   * a stale or missing copy simply yields the next tier (or cold).
  // An undetectably poisoned snapshot validates clean; the warm attempt
  // proceeds and crashes mid-startup, which the hardened recoverer's
  // deadline treats like any other restart-path fault.
  const core::CheckpointPolicy& policy = station_.config().checkpoints;
  const ComponentTiming& timing = component->timing();
  bool warm = false;
  bool poisoned = false;
  core::CheckpointTier warm_tier = core::CheckpointTier::kL0Local;
  std::string cold_reason = "policy-off";
  if (policy.enabled && !timing.has_warm_path()) {
    cold_reason = "no-warm-path";
  } else if (policy.enabled) {
    if (attempt > 1 && station_.checkpoints().suspect_discard(name)) {
      obs::incr("checkpoint.suspect_discards");
      LogLine(LogLevel::kWarn, station_.sim().now(), name)
          << "local checkpoint discarded (attempt " << attempt
          << " of this chain; state is fault-suspected)";
    }
    const core::TierLookup lookup =
        station_.checkpoints().lookup(name, station_.sim().now());
    for (const core::TierProbe& probe : lookup.probes) {
      if (!probe.discarded) continue;
      obs::incr("checkpoint.invalid_discards");
      LogLine(LogLevel::kWarn, station_.sim().now(), name)
          << core::to_string(probe.tier) << " checkpoint failed validation ("
          << core::to_string(probe.verdict) << "); deleted";
    }
    if (lookup.hit) {
      warm = true;
      warm_tier = lookup.tier;
      poisoned = lookup.checkpoint->poisoned;
      if (warm_tier != core::CheckpointTier::kL0Local) {
        obs::incr("checkpoint.replica_hits");
        LogLine(LogLevel::kInfo, station_.sim().now(), name)
            << "warm start served from " << core::to_string(warm_tier);
      }
    } else {
      // On a retry the legacy reason wins: the chain is fault-suspected no
      // matter which verdict the (now L0-less) walk reports.
      cold_reason = attempt > 1 ? "fault-suspect" : lookup.miss_reason();
    }
    if (warm) {
      ++warm_restarts_;
      obs::incr("pm.warm_restarts");
    } else if (timing.has_warm_path()) {
      ++cold_fallbacks_;
      obs::incr("pm.cold_fallbacks");
    }
  }

  const double mean = (warm ? timing.warm_startup_mean : timing.startup_mean)
                          .to_seconds();
  const double sd = (warm ? timing.warm_startup_stddev : timing.startup_stddev)
                        .to_seconds();
  const double base = rng_.normal_at_least(mean, sd, 0.5 * mean);
  // A replica or stable-storage reload costs a little more than the local
  // copy (the factor is 1.0 for L0 and for cold starts, so single-tier runs
  // reproduce ISSUE 3's timings bit-for-bit).
  const double reload = warm ? policy.reload_factor(warm_tier) : 1.0;
  const Duration startup = Duration::seconds(base * contention * reload);

  // The epoch lets the trace checker prove supersede order: attempts of one
  // component must carry strictly increasing epochs within a run.
  std::vector<obs::TraceArg> span_args = {
      {"component", name},
      {"attempt", std::to_string(attempt)},
      {"epoch", std::to_string(epoch)},
      {"contention", util::format_fixed(contention, 3)}};
  if (policy.enabled) {
    // Warm/cold annotation only under the policy, so legacy traces stay
    // byte-identical to the seed's.
    span_args.push_back({"start", warm ? "warm" : "cold"});
    if (warm) {
      span_args.push_back({"warm_tier", std::string(core::to_string(warm_tier))});
    } else {
      span_args.push_back({"cold_reason", cold_reason});
    }
  }
  proc.span = obs::begin_span(station_.sim().now(), "restart",
                              "restart:" + name, "pm", std::move(span_args));
  obs::incr("pm.restarts");

  if (hang) {
    // The startup never completes; nothing is scheduled. Only a superseding
    // restart (the recoverer's deadline path) moves this component again.
    station_.board().note_restart_hang(name, station_.sim().now());
    LogLine(LogLevel::kWarn, station_.sim().now(), name)
        << "startup hangs (restart-time fault, attempt " << attempt << ")";
    return;
  }

  if (crash) {
    // The startup runs its course, then dies: the component stays down, its
    // group stays incomplete, and the attempt counter advances.
    station_.sim().schedule_after(
        startup, "restart.crash:" + name, [this, name, epoch] {
          Proc& proc = procs_[name];
          if (proc.epoch != epoch) return;  // superseded meanwhile
          station_.board().note_restart_crash(name, station_.sim().now());
          if (proc.span != 0) {
            obs::end_span(station_.sim().now(), proc.span,
                          {{"outcome", "crashed"}});
            proc.span = 0;
          }
          LogLine(LogLevel::kWarn, station_.sim().now(), name)
              << "crashed during startup (restart-time fault)";
        });
    return;
  }

  if (warm && poisoned) {
    // The snapshot validated clean but its state is garbage (undetectable
    // corruption): the warm startup runs its course, then dies reloading it.
    // The component stays down and its group stays incomplete — only the
    // hardened recoverer's deadline moves it again, and that path discards
    // the poisoned snapshot so the retry runs cold.
    ++checkpoint_crashes_;
    station_.sim().schedule_after(
        startup, "restart.ckpt-poisoned:" + name,
        [this, name, epoch, warm_tier] {
          Proc& proc = procs_[name];
          if (proc.epoch != epoch) return;  // superseded meanwhile
          // Only the tier that served the garbage is condemned; a clean copy
          // in another tier may still warm the retry.
          station_.checkpoints().discard_tier(name, warm_tier);
          station_.board().note_restart_crash(name, station_.sim().now());
          obs::incr("checkpoint.poison_crashes");
          if (proc.span != 0) {
            obs::end_span(station_.sim().now(), proc.span,
                          {{"outcome", "corrupt-checkpoint"}});
            proc.span = 0;
          }
          LogLine(LogLevel::kWarn, station_.sim().now(), name)
              << "crashed during warm startup (poisoned checkpoint)";
        });
    return;
  }

  station_.sim().schedule_after(
      startup, "restart.complete:" + name, [this, name, epoch, warm] {
        Proc& proc = procs_[name];
        if (proc.epoch != epoch) return;  // superseded meanwhile
        Component* component = station_.component(name);
        assert(component != nullptr);
        proc.restarting = false;
        proc.attempts = 0;
        --restarting_count_;
        if (warm) {
          // Tier rebuild (ISSUE 7): before the component resumes (and
          // eventually refreshes its snapshot itself), re-replicate the
          // serving copy into the tiers the fault emptied, so a second
          // failure of the same cell arriving before the next natural save
          // still warm-hits instead of falling off the redundancy cliff.
          const std::size_t rebuilt =
              station_.checkpoints().rebuild(name, station_.sim().now());
          if (rebuilt > 0) {
            obs::incr("checkpoint.tier_rebuilds", rebuilt);
            LogLine(LogLevel::kInfo, station_.sim().now(), name)
                << "repopulated " << rebuilt << " checkpoint tier(s) after warm start";
          }
        }
        component->complete_start(warm);
        if (proc.span != 0) {
          obs::end_span(station_.sim().now(), proc.span, {{"outcome", "ready"}});
          proc.span = 0;
        }
        station_.board().on_restart_complete(name, station_.sim().now());
        station_.notify_component_restarted(name);
        const std::uint64_t group_id = proc.group;
        proc.group = 0;
        finish_group_member(group_id);
      });
}

}  // namespace mercury::station
