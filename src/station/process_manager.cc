#include "station/process_manager.h"

#include <algorithm>
#include <cassert>

#include "obs/trace.h"
#include "station/station.h"
#include "util/log.h"
#include "util/strings.h"

namespace mercury::station {

using util::Duration;
using util::LogLevel;
using util::LogLine;

ProcessManager::ProcessManager(Station& station)
    : station_(station), rng_(station.sim().rng().fork("process-manager")) {}

std::vector<std::string> ProcessManager::component_names() const {
  return station_.component_names();
}

std::vector<std::string> ProcessManager::restarting_now() const {
  std::vector<std::string> names;
  for (const auto& [name, in_flight] : restarting_) {
    if (in_flight) names.push_back(name);
  }
  return names;
}

void ProcessManager::soft_recover(const std::string& component,
                                  std::function<void()> on_complete) {
  assert(station_.component(component) != nullptr &&
         "soft_recover: unknown component");
  const std::string name = component;
  const std::uint64_t span = obs::begin_span(
      station_.sim().now(), "restart", "soft:" + name, "pm");
  station_.sim().schedule_after(
      station_.cal().soft_recovery_duration, "soft-recover:" + name,
      [this, name, span, on_complete = std::move(on_complete)] {
        Component* target = station_.component(name);
        // A kill that raced in supersedes the soft procedure; the restart
        // path owns recovery now.
        if (target != nullptr && target->up() && !target->restarting()) {
          target->attach_to_bus();
          station_.board().on_soft_recovery_complete(name, station_.sim().now());
        }
        obs::end_span(station_.sim().now(), span);
        if (on_complete) on_complete();
      });
}

void ProcessManager::restart_group(const std::vector<std::string>& names,
                                   std::function<void()> on_complete) {
  assert(!names.empty());
  const std::uint64_t group_id = next_group_++;
  Group& group = groups_[group_id];
  group.on_complete = std::move(on_complete);
  ++groups_restarted_;

  // Kill phase: everything in the group dies first (REC kills the whole
  // subtree before bringing it back).
  std::vector<Component*> members;
  for (const auto& name : names) {
    Component* component = station_.component(name);
    assert(component != nullptr && "restart_group: unknown component");
    if (restarting_[name]) {
      // Already being restarted by an overlapping group; fold into ours by
      // skipping the duplicate kill/start (its completion serves both —
      // conservative, and REC's dedup makes this path rare).
      continue;
    }
    members.push_back(component);
    restarting_[name] = true;
    ++restarting_count_;
  }
  group.remaining = members.size();
  if (members.empty()) {
    // Everything already in flight elsewhere; complete immediately.
    Group finished = std::move(groups_[group_id]);
    groups_.erase(group_id);
    if (finished.on_complete) finished.on_complete();
    return;
  }

  for (Component* component : members) component->kill();

  // Contention (§4.1): concurrent restarts slow each other down. The factor
  // is computed once per group from the total number of in-flight restarts.
  const double contention =
      1.0 + station_.cal().contention_slope * std::max(0, restarting_count_ - 2);

  for (Component* component : members) {
    const ComponentTiming& timing = component->timing();
    const double mean = timing.startup_mean.to_seconds();
    const double sd = timing.startup_stddev.to_seconds();
    const double base = rng_.normal_at_least(mean, sd, 0.5 * mean);
    const Duration startup = Duration::seconds(base * contention);
    ++restarts_performed_;

    const std::string name = component->name();
    const std::uint64_t span = obs::begin_span(
        station_.sim().now(), "restart", "restart:" + name, "pm",
        {{"component", name},
         {"contention", util::format_fixed(contention, 3)}});
    obs::incr("pm.restarts");
    station_.sim().schedule_after(
        startup, "restart.complete:" + name, [this, name, span, group_id] {
          Component* component = station_.component(name);
          assert(component != nullptr);
          restarting_[name] = false;
          --restarting_count_;
          component->complete_start();
          obs::end_span(station_.sim().now(), span);
          station_.board().on_restart_complete(name, station_.sim().now());
          station_.notify_component_restarted(name);

          const auto it = groups_.find(group_id);
          assert(it != groups_.end());
          if (--it->second.remaining == 0) {
            auto on_complete = std::move(it->second.on_complete);
            groups_.erase(it);
            if (on_complete) on_complete();
          }
        });
  }
}

}  // namespace mercury::station
