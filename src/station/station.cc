#include "station/station.h"

#include <cassert>

#include "core/mercury_trees.h"
#include "util/log.h"

namespace mercury::station {

namespace names = core::component_names;

Station::Station(sim::Simulator& sim, StationConfig config)
    : sim_(sim),
      config_(std::move(config)),
      serial_port_(radio_),
      satellite_(config_.satellite) {
  bus_ = std::make_unique<bus::MessageBus>(sim_, config_.bus);
  sync_ = std::make_unique<SyncCoordinator>(*this, names::kSes, names::kStr);
  checkpoints_.configure(config_.checkpoints);
  process_manager_ = std::make_unique<ProcessManager>(*this);

  const Calibration& cal = config_.cal;
  components_[names::kMbus] = std::make_unique<MbusComponent>(*this, cal.mbus);
  components_[names::kSes] =
      std::make_unique<SesComponent>(*this, cal.ses, *sync_);
  components_[names::kStr] =
      std::make_unique<StrComponent>(*this, cal.str, *sync_);
  components_[names::kRtu] = std::make_unique<RtuComponent>(*this, cal.rtu);

  if (config_.split_fedrcom) {
    link_ = std::make_unique<FedrPbcomLink>(*this);
    components_[names::kFedr] =
        std::make_unique<FedrComponent>(*this, cal.fedr, *link_);
    components_[names::kPbcom] =
        std::make_unique<PbcomComponent>(*this, cal.pbcom, *link_);
    radio_frontend_ = names::kFedr;

    // §4.2: "when fedr fails, its connection to pbcom is severed" — a crash
    // (not only a kill) drops the TCP connection and ages pbcom.
    board_.add_inject_listener([this](const core::ActiveFailure& failure) {
      if (failure.spec.manifest == names::kFedr && failure.spec.kind == "crash") {
        link_->on_fedr_crash_manifested();
      }
    });
  } else {
    components_[names::kFedrcom] =
        std::make_unique<FedrcomComponent>(*this, cal.fedrcom);
    radio_frontend_ = names::kFedrcom;
  }

  // An mbus *crash* (not just a restart) takes the whole bus down: the paper
  // calls mbus failures fail-silent JVM deaths, and a dead bus silences
  // every endpoint, which is how FD's mbus-verification path attributes the
  // outage correctly. Soft-curable transients (a stale attachment) leave
  // the bus process running.
  board_.add_inject_listener([this](const core::ActiveFailure& failure) {
    if (failure.spec.manifest == names::kMbus && !failure.spec.soft_curable) {
      bus_->crash();
    }
  });

  // An L1 replica lives in its host component's memory: a crash of the host
  // (anything that kills the process, i.e. not a soft-curable transient)
  // takes every replica it held down with it. This is what makes the
  // correlated-failure cases real — a fault that fells both a component and
  // its partner leaves only stable storage between it and a cold start.
  if (config_.checkpoints.enabled) {
    board_.add_inject_listener([this](const core::ActiveFailure& failure) {
      if (!failure.spec.soft_curable) {
        checkpoints_.on_host_down(failure.spec.manifest);
      }
    });
  }
}

FedrPbcomLink& Station::fedr_pbcom_link() {
  assert(link_ && "fedr/pbcom link only exists in split configuration");
  return *link_;
}

Component* Station::component(const std::string& name) {
  const auto it = components_.find(name);
  return it == components_.end() ? nullptr : it->second.get();
}

const Component* Station::component(const std::string& name) const {
  const auto it = components_.find(name);
  return it == components_.end() ? nullptr : it->second.get();
}

std::vector<std::string> Station::component_names() const {
  std::vector<std::string> out;
  out.reserve(components_.size());
  for (const auto& [name, component] : components_) out.push_back(name);
  return out;
}

void Station::boot_instant() {
  for (auto& [name, component] : components_) component->instant_boot();
}

void Station::reattach_all() {
  for (auto& [name, component] : components_) component->attach_to_bus();
}

void Station::add_bus_restart_listener(std::function<void()> listener) {
  bus_restart_listeners_.push_back(std::move(listener));
}

void Station::notify_bus_restarted() {
  for (const auto& listener : bus_restart_listeners_) listener();
}

void Station::add_restart_listener(
    std::function<void(const std::string&, util::TimePoint)> listener) {
  restart_listeners_.push_back(std::move(listener));
}

void Station::notify_component_restarted(const std::string& name) {
  for (const auto& listener : restart_listeners_) listener(name, sim_.now());
}

bool Station::all_functional() const {
  if (!bus_->online()) return false;
  if (board_.any_active()) return false;
  if (process_manager_->restart_in_progress()) return false;
  for (const auto& [name, component] : components_) {
    if (!component->functional()) return false;
  }
  return true;
}

bool Station::functional_except(const std::set<std::string>& excluded) const {
  if (!bus_->online()) return false;
  for (const auto& failure : board_.active()) {
    if (!excluded.contains(failure.spec.manifest)) return false;
  }
  for (const auto& [name, component] : components_) {
    if (excluded.contains(name)) continue;
    if (!component->functional() || component->restarting()) return false;
  }
  return true;
}

void Station::set_restart_faults(const std::string& component_name,
                                 core::RestartFaultSpec spec) {
  assert(component(component_name) != nullptr);
  board_.set_restart_faults(component_name, spec);
}

void Station::save_checkpoint(
    const std::string& component_name,
    std::vector<std::pair<std::string, std::string>> payload) {
  if (!config_.checkpoints.enabled) return;
  assert(component(component_name) != nullptr);
  checkpoints_.save(component_name, std::move(payload), sim_.now());
}

core::FailureId Station::inject_crash(const std::string& component_name) {
  assert(component(component_name) != nullptr);
  return board_.inject(core::make_crash(component_name), sim_.now());
}

core::FailureId Station::inject_joint_fedr_pbcom() {
  assert(config_.split_fedrcom);
  return board_.inject(
      core::make_joint(names::kPbcom, {names::kFedr, names::kPbcom}), sim_.now());
}

core::FailureId Station::inject_stale_attachment(const std::string& component_name) {
  assert(component(component_name) != nullptr);
  // The stale endpoint really is gone from the bus; the soft procedure (or
  // a restart) re-attaches it.
  bus_->detach(component_name);
  return board_.inject(core::make_stale_attachment(component_name), sim_.now());
}

}  // namespace mercury::station
