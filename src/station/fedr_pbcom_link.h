// The fedr <-> pbcom TCP link and pbcom's aging bug (paper §4.2).
//
// After the fedrcom split, "the two components must explicitly communicate
// via IPC": fedr holds a TCP connection to pbcom. We model:
//
//   * fedr is functional only while connected;
//   * fedr connecting at its own startup to a healthy pbcom is quick
//     (fedr_connect); reconnecting after pbcom restarts under it costs a
//     retry poll (fedr_reconnect) — "the increased value of pbcom's
//     recovery time is due to communication overhead";
//   * "when fedr fails, its connection to pbcom is severed; due to bugs,
//     pbcom ages every time it loses the connection and, at some point, the
//     aging leads to its total failure" — each severed connection bumps an
//     age counter; at the threshold pbcom suffers an aging crash. A pbcom
//     restart rejuvenates it (age resets), which is what makes tree V's
//     "free" joint restarts improve MTTF (§4.4).
#pragma once

#include <cstdint>
#include <string>

#include "station/calibration.h"

namespace mercury::station {

class Station;

class FedrPbcomLink {
 public:
  explicit FedrPbcomLink(Station& station);

  bool connected() const { return connected_; }
  int pbcom_age() const { return pbcom_age_; }
  std::uint64_t fedr_restart_count() const { return fedr_restarts_; }

  /// Lifecycle notifications.
  void on_fedr_killed();
  void on_fedr_started();
  void on_fedr_crash_manifested();  ///< fedr wedged by an injected failure
  void on_pbcom_killed();
  void on_pbcom_started();
  void on_instant_boot();

 private:
  void sever(bool ages_pbcom);
  void try_connect(util::Duration delay, std::uint64_t epoch);
  void retry_loop(std::uint64_t epoch);

  Station& station_;
  bool connected_ = false;
  int pbcom_age_ = 0;
  std::uint64_t fedr_restarts_ = 0;
  std::uint64_t epoch_ = 0;  ///< voids stale connect attempts
};

}  // namespace mercury::station
