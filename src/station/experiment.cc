#include "station/experiment.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "core/mercury_trees.h"
#include "exp/runner.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/strings.h"

namespace mercury::station {

namespace names = core::component_names;
using util::Duration;

std::string to_string(OracleKind kind) {
  switch (kind) {
    case OracleKind::kHeuristic: return "heuristic";
    case OracleKind::kPerfect: return "perfect";
    case OracleKind::kFaultyPerfect: return "faulty";
    case OracleKind::kLearning: return "learning";
  }
  return "?";
}

util::Duration hardened_restart_deadline(
    const Calibration& cal, const std::vector<std::string>& components) {
  double worst = 0.0;
  for (const auto& name : components) {
    const ComponentTiming timing = cal.timing_for(name);
    worst = std::max(worst, timing.startup_mean.to_seconds() +
                                3.0 * timing.startup_stddev.to_seconds());
  }
  const double full_contention =
      1.0 + cal.contention_slope *
                std::max<double>(0.0, static_cast<double>(components.size()) - 2.0);
  return Duration::seconds(worst * full_contention * 1.5);
}

std::vector<std::string> command_routes(core::MercuryTree tree) {
  // The command path: ground commands reach the spacecraft through the RTU
  // and the radio frontends.
  if (core::uses_split_fedrcom(tree)) {
    return {names::kRtu, names::kFedr, names::kPbcom};
  }
  return {names::kRtu, names::kFedrcom};
}

std::vector<std::string> telemetry_routes(core::MercuryTree tree) {
  (void)tree;  // same data chain in every tree
  return {names::kSes, names::kStr};
}

MercuryRig::MercuryRig(sim::Simulator& sim, const TrialSpec& spec)
    : sim_(sim), cal_(spec.cal) {
  StationConfig config;
  config.split_fedrcom = core::uses_split_fedrcom(spec.tree);
  config.enable_domain_behavior = spec.enable_domain_behavior;
  config.cal = spec.cal;
  config.bus.loss_probability = spec.bus_loss_probability;
  // Client traffic gets typed mid-restart nacks: a fast "restarting" error
  // beats a silent drop both for retry latency and for the touch signal.
  config.bus.typed_restart_errors = spec.traffic.enabled;
  config.checkpoints.enabled = spec.enable_checkpoints;
  config.checkpoints.ttl = spec.checkpoint_ttl;
  config.checkpoints.l1_partner = spec.checkpoint_l1;
  config.checkpoints.l2_stable = spec.checkpoint_l2;
  station_ = std::make_unique<Station>(sim_, config);
  if (spec.enable_checkpoints && spec.checkpoint_l1) {
    // Deterministic buddy assignment from the restart tree: the partner map
    // is pure topology, so every trial of a grid agrees on who hosts whom.
    station_->checkpoints().set_partners(
        core::choose_partners(core::make_mercury_tree(spec.tree)));
  }

  link_ = std::make_unique<bus::DedicatedLink>(sim_, "fd", "rec",
                                               spec.cal.link_latency);

  // Oracle stack.
  if (spec.oracle_override != nullptr) {
    active_oracle_ = spec.oracle_override;
  } else {
    switch (spec.oracle) {
      case OracleKind::kHeuristic:
        owned_oracle_ = std::make_unique<core::HeuristicOracle>();
        active_oracle_ = owned_oracle_.get();
        break;
      case OracleKind::kPerfect:
        perfect_oracle_ = std::make_unique<core::PerfectOracle>(station_->board());
        active_oracle_ = perfect_oracle_.get();
        break;
      case OracleKind::kFaultyPerfect:
        perfect_oracle_ = std::make_unique<core::PerfectOracle>(station_->board());
        owned_oracle_ = std::make_unique<core::FaultyOracle>(
            *perfect_oracle_, sim_.rng().fork("faulty-oracle"), spec.faulty_p_low,
            spec.faulty_p_high);
        active_oracle_ = owned_oracle_.get();
        break;
      case OracleKind::kLearning: {
        std::map<std::string, double> costs;
        for (const auto& name : station_->component_names()) {
          costs[name] = spec.cal.timing_for(name).startup_mean.to_seconds();
        }
        owned_oracle_ = std::make_unique<core::LearningOracle>(
            sim_.rng().fork("learning-oracle"), std::move(costs));
        active_oracle_ = owned_oracle_.get();
        break;
      }
    }
  }

  core::FdConfig fd_config;
  fd_config.ping_period = spec.cal.ping_period;
  fd_config.ping_timeout = spec.cal.ping_timeout;
  fd_config.mbus_verify_timeout = spec.cal.ping_timeout;
  fd_config.misses_before_report = spec.fd_misses_before_report;
  fd_ = std::make_unique<core::FailureDetector>(
      sim_, station_->bus(), *link_, station_->component_names(), fd_config);

  core::RecConfig rec_config;
  rec_config.enable_soft_recovery = spec.enable_soft_recovery;
  rec_config.dispatch = spec.dispatch;
  rec_config.traffic_driven = spec.traffic_driven;
  rec_config.lazy_drain_interval = spec.lazy_drain_interval;
  if (spec.harden_restart_path) {
    rec_config.restart_deadline =
        hardened_restart_deadline(spec.cal, station_->component_names());
    rec_config.backoff_base = spec.backoff_base;
    rec_config.max_attempts_per_chain = spec.max_attempts_per_chain;
  }
  for (const auto& [name, faults] : spec.restart_faults) {
    station_->set_restart_faults(name, faults);
  }
  rec_ = std::make_unique<core::Recoverer>(
      sim_, *link_, core::make_mercury_tree(spec.tree), *active_oracle_,
      station_->process_manager(), rec_config);

  // FD re-attaches its endpoint after every bus restart.
  station_->add_bus_restart_listener([this] { fd_->reattach(); });

  // Mutual recovery (§2.2): each side can restart the other's process.
  rec_->set_fd_restarter([this] {
    const Duration startup = cal_.fd.startup_mean;
    sim_.schedule_after(startup, "fd.restart",
                        [this] { fd_->restart_complete(); });
  });
  fd_->set_rec_restarter([this] {
    const Duration startup = cal_.rec.startup_mean;
    sim_.schedule_after(startup, "rec.restart",
                        [this] { rec_->restart_complete(); });
  });

  if (spec.traffic.enabled) {
    workload::WorkloadConfig wl;
    wl.command_sessions = spec.traffic.command_sessions;
    wl.telemetry_sessions = spec.traffic.telemetry_sessions;
    wl.mean_interarrival = spec.traffic.mean_interarrival;
    wl.request_timeout = spec.traffic.request_timeout;
    wl.retry_backoff = spec.traffic.retry_backoff;
    wl.max_attempts = spec.traffic.max_attempts;
    wl.seed = spec.seed;
    wl.trace_requests = spec.traffic.trace_requests;
    wl.mode_label = spec.traffic_driven &&
                            spec.dispatch == core::DispatchMode::kOnDemand
                        ? "ondemand"
                        : std::string(to_string(spec.dispatch));
    workload_ = std::make_unique<workload::WorkloadDriver>(
        sim_, station_->bus(), command_routes(spec.tree),
        telemetry_routes(spec.tree), wl);
    // A request at a parked route gets a clean local rejection instead of
    // burning its retry budget against a component that will not return.
    workload_->set_parked_query(
        [this](const std::string& target) { return rec_->parked().contains(target); });
    if (spec.traffic_driven) {
      // Client evidence a route is down (timeout or "restarting" nack)
      // promotes its lazily queued restart.
      workload_->set_touch_callback(
          [this](const std::string& target) { rec_->touch(target); });
      // Bus-level touch: a client request landing on a killed (detached)
      // endpoint fires before any nack/timeout round-trips. Filter to client
      // senders — FD's liveness pings touch every dead component and would
      // otherwise degenerate lazy recovery into eager DAG dispatch.
      station_->bus().set_touch_listener(
          [this](const std::string& to, const std::string& from) {
            if (util::starts_with(from, "cli.")) rec_->touch(to);
          });
    }
  }
}

void MercuryRig::start() {
  station_->boot_instant();
  fd_->start();
  rec_->start();
  rec_->monitor_fd();
  fd_->monitor_rec();
}

TrialResult run_trial(const TrialSpec& spec) {
  // Each trial is its own track in the trace (Chrome export: one "process"
  // per run), so repeated trials starting at t=0 do not overlap.
  obs::next_run();
  obs::instant(util::TimePoint::origin(), "sim", "trial.start", "trial",
               {{"seed", std::to_string(spec.seed)},
                {"component", spec.fail_component},
                {"oracle", to_string(spec.oracle)}});

  sim::Simulator sim(spec.seed);
  MercuryRig rig(sim, spec);
  rig.start();
  // Traffic baseline: the workload serves through warmup, so the goodput
  // dip is measured against a real pre-injection serving rate.
  if (rig.workload() != nullptr) rig.workload()->start();

  sim.run_for(spec.warmup);

  // Inject at a uniformly random phase of the ping schedule, as a physical
  // SIGKILL at an arbitrary wall-clock instant would land.
  const Duration phase = Duration::seconds(
      sim.rng().uniform(0.0, spec.cal.ping_period.to_seconds()));
  sim.run_for(phase);
  const util::TimePoint injected_at = sim.now();

  switch (spec.mode) {
    case FailureMode::kCrash:
      assert(!spec.fail_component.empty());
      rig.station().inject_crash(spec.fail_component);
      break;
    case FailureMode::kJointFedrPbcom:
      rig.station().inject_joint_fedr_pbcom();
      break;
    case FailureMode::kStaleAttachment:
      assert(!spec.fail_component.empty());
      rig.station().inject_stale_attachment(spec.fail_component);
      break;
  }

  // Checkpoint damage rides along with the failure (ISSUE 3, per-tier by
  // ISSUE 7): whatever killed the component may have trashed its snapshot
  // too — in any combination of tiers.
  const std::string& victim = spec.mode == FailureMode::kJointFedrPbcom
                                  ? names::kPbcom
                                  : spec.fail_component;
  const auto apply_damage = [&](TrialSpec::CheckpointDamage damage,
                                core::CheckpointTier tier) {
    switch (damage) {
      case TrialSpec::CheckpointDamage::kNone:
        break;
      case TrialSpec::CheckpointDamage::kCorrupt:
        rig.station().checkpoints().corrupt(victim, tier);
        break;
      case TrialSpec::CheckpointDamage::kPoison:
        rig.station().checkpoints().poison(victim, tier);
        break;
      case TrialSpec::CheckpointDamage::kStale:
        rig.station().checkpoints().stale_date(
            victim, tier,
            injected_at - spec.checkpoint_ttl - Duration::seconds(1.0));
        break;
      case TrialSpec::CheckpointDamage::kKill:
        rig.station().checkpoints().discard_tier(victim, tier);
        break;
    }
  };
  apply_damage(spec.checkpoint_damage, core::CheckpointTier::kL0Local);
  apply_damage(spec.checkpoint_l1_damage, core::CheckpointTier::kL1Partner);
  apply_damage(spec.checkpoint_l2_damage, core::CheckpointTier::kL2Stable);

  // Correlated partner loss: the same fault event fells the victim's L1
  // replica host; the station's host-down listener drops its replicas.
  if (spec.fail_partner_too) {
    const std::string& partner =
        rig.station().checkpoints().partner_of(victim);
    if (!partner.empty()) rig.station().inject_crash(partner);
  }

  // Multi-fault scenarios (ISSUE 8): extra crashes land at fixed offsets
  // after the primary, giving the parallel scheduler disjoint cells to work
  // concurrently.
  for (const auto& extra : spec.extra_faults) {
    const std::string name = extra.component;
    sim.schedule_after(extra.delay, "extra-fault." + name,
                       [&rig, name] { rig.station().inject_crash(name); });
  }

  TrialResult result;
  const util::TimePoint deadline = injected_at + spec.timeout;
  while (sim.now() < deadline) {
    if (rig.station().all_functional() && !rig.rec().restart_in_progress()) {
      break;
    }
    if (!rig.rec().hard_failures().empty()) {
      result.hard_failure = true;
      break;
    }
    if (!sim.step()) break;  // queue drained (should not happen: ping loops)
  }

  result.recovery = sim.now() - injected_at;
  if (!result.hard_failure && sim.now() >= deadline) {
    result.timed_out = true;
    result.recovery = spec.timeout;
  }
  if (result.hard_failure) {
    // Let the station settle into degraded operation: everything outside
    // the parked set back up and functional. (With mbus parked this can
    // never succeed; the loop is bounded by the trial deadline.)
    const std::set<std::string>& parked = rig.rec().parked();
    while (sim.now() < deadline && !rig.station().functional_except(parked)) {
      if (!sim.step()) break;
    }
    result.degraded_functional = rig.station().functional_except(parked);
  }
  result.restarts = static_cast<int>(rig.rec().restarts_executed());
  result.escalations = static_cast<int>(rig.rec().escalations());
  result.restart_timeouts = static_cast<int>(rig.rec().restart_timeouts());
  result.backoffs = static_cast<int>(rig.rec().backoffs_applied());
  result.parked.assign(rig.rec().parked().begin(), rig.rec().parked().end());
  result.warm_restarts =
      static_cast<int>(rig.station().process_manager().warm_restarts());
  result.cold_fallbacks =
      static_cast<int>(rig.station().process_manager().cold_fallbacks());
  result.checkpoint_crashes =
      static_cast<int>(rig.station().process_manager().checkpoint_crashes());
  const core::TieredCheckpointStore& tiers = rig.station().checkpoints();
  result.warm_hits_l0 =
      static_cast<int>(tiers.tier_hits(core::CheckpointTier::kL0Local));
  result.warm_hits_l1 =
      static_cast<int>(tiers.tier_hits(core::CheckpointTier::kL1Partner));
  result.warm_hits_l2 =
      static_cast<int>(tiers.tier_hits(core::CheckpointTier::kL2Stable));
  result.tier_rebuilds = static_cast<int>(tiers.rebuilds());
  result.max_concurrent_restarts =
      static_cast<int>(rig.rec().max_concurrent_restarts());
  result.absorbed_restarts = static_cast<int>(rig.rec().absorbed_restarts());
  if (!result.timed_out && !result.hard_failure) {
    // The "functionally ready" moment the paper's methodology timestamps:
    // closes the last recovery action's execution phase in the trace,
    // covering post-restart readiness work like the §4.3 resync.
    obs::instant(sim.now(), "sim", "trial.recovered", "trial",
                 {{"recovery", util::format_fixed(result.recovery.to_seconds(), 6)}});
    obs::observe("trial.recovery_seconds", result.recovery.to_seconds());
  }

  // Stop issuing new requests at measurement end; the settle window below
  // (3.5 s) covers the in-flight drain (at most max_attempts retry rounds,
  // ~2 s at defaults), so issued == served + lost holds exactly.
  if (rig.workload() != nullptr) rig.workload()->quiesce();

  // Let the recoverer's post-recovery bookkeeping (the oracle's positive
  // cure feedback fires one escalation-window after the restart) settle, so
  // persistent oracles learn from this trial.
  sim.run_for(core::RecConfig{}.escalation_window + Duration::seconds(1.0));

  if (rig.workload() != nullptr) {
    workload::WorkloadDriver& wl = *rig.workload();
    result.traffic =
        wl.account().summarize(injected_at.to_seconds(), wl.quiesce_time());
    result.touch_promotions = static_cast<int>(rig.rec().touch_promotions());
    result.lazy_drains = static_cast<int>(rig.rec().lazy_drains());
    if (spec.traffic.keep_outcome_log) {
      result.traffic_outcome_log = wl.outcome_text();
    }
  }
  return result;
}

TracedTrial run_trial_traced(const TrialSpec& spec) {
  TracedTrial traced;
  obs::TraceRecorder recorder;
  {
    obs::ScopedRecorder scope(recorder);
    traced.result = run_trial(spec);
  }
  traced.events = recorder.events().to_vector();
  return traced;
}

std::vector<TrialResult> run_trial_batch(const std::vector<TrialSpec>& specs) {
  const bool order_dependent =
      std::any_of(specs.begin(), specs.end(), [](const TrialSpec& spec) {
        return spec.oracle_override != nullptr;
      });
  if (order_dependent) {
    // A persistent oracle mutates across trials in trial order; the serial
    // loop is the definition of its behaviour, not an optimisation fallback.
    std::vector<TrialResult> results;
    results.reserve(specs.size());
    for (const TrialSpec& spec : specs) results.push_back(run_trial(spec));
    return results;
  }
  exp::ExperimentRunner runner;
  return runner.map(specs.size(), [&specs](exp::TrialContext& ctx) {
    return run_trial(specs[ctx.index]);
  });
}

util::SampleStats run_trials(TrialSpec spec, int trials) {
  return run_trials_grid({std::move(spec)}, trials).front();
}

std::vector<util::SampleStats> run_trials_grid(
    const std::vector<TrialSpec>& specs, int trials) {
  std::vector<TrialSpec> flat;
  flat.reserve(specs.size() * static_cast<std::size_t>(std::max(trials, 0)));
  for (const TrialSpec& spec : specs) {
    for (int i = 0; i < trials; ++i) {
      TrialSpec cell = spec;
      cell.seed = spec.seed + static_cast<std::uint64_t>(i);
      flat.push_back(std::move(cell));
    }
  }
  const std::vector<TrialResult> results = run_trial_batch(flat);
  std::vector<util::SampleStats> stats(specs.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    stats[i / static_cast<std::size_t>(trials)].add(results[i].recovery);
  }
  return stats;
}

}  // namespace mercury::station
