#include "station/radio.h"

#include <cstdlib>

#include "util/strings.h"

namespace mercury::station {

void Radio::apply_command(const std::string& line, util::TimePoint now) {
  last_command_ = now;
  const auto parts = util::split(std::string{util::trim(line)}, ' ');
  if (parts.size() == 2 && parts[0] == "FREQ") {
    char* end = nullptr;
    const double hz = std::strtod(parts[1].c_str(), &end);
    if (end != parts[1].c_str() && hz > 0.0) {
      frequency_hz_ = hz;
      ++commands_applied_;
      return;
    }
  } else if (parts.size() == 2 && parts[0] == "MODE") {
    mode_ = parts[1];
    ++commands_applied_;
    return;
  }
  ++commands_rejected_;
}

bool SerialPort::write(const std::string& line, util::TimePoint now) {
  if (!open_) {
    ++writes_dropped_;
    return false;
  }
  radio_->apply_command(line, now);
  return true;
}

}  // namespace mercury::station
