#include "station/sync_coordinator.h"

#include <cassert>

#include "core/failure.h"
#include "station/station.h"
#include "util/log.h"

namespace mercury::station {

using util::LogLevel;
using util::LogLine;

SyncCoordinator::SyncCoordinator(Station& station, std::string a, std::string b)
    : station_(station) {
  a_.name = std::move(a);
  b_.name = std::move(b);
}

SyncCoordinator::Side& SyncCoordinator::side(const std::string& component) {
  assert(component == a_.name || component == b_.name);
  return component == a_.name ? a_ : b_;
}

const SyncCoordinator::Side& SyncCoordinator::side(const std::string& component) const {
  assert(component == a_.name || component == b_.name);
  return component == a_.name ? a_ : b_;
}

SyncCoordinator::Side& SyncCoordinator::peer_of(const std::string& component) {
  return component == a_.name ? b_ : a_;
}

bool SyncCoordinator::synced(const std::string& component) const {
  return side(component).state == State::kSynced;
}

SyncCoordinator::State SyncCoordinator::state(const std::string& component) const {
  return side(component).state;
}

void SyncCoordinator::on_killed(const std::string& component) {
  ++epoch_;  // void any in-flight handshake completion
  Side& self = side(component);
  self.state = State::kNoSession;
  // The survivor's session now dangles at a dead peer; it does not notice
  // (the peer is fail-silent). Its state intentionally stays kSynced-stale
  // until the fresh peer's resync attempt trips the bug.
}

void SyncCoordinator::on_started(const std::string& component) {
  Side& self = side(component);
  Side& peer = peer_of(component);
  Component* peer_component = station_.component(peer.name);
  assert(peer_component != nullptr);

  if (peer_component->restarting()) {
    // Group restart: wait for the peer, then collide (handled when the peer
    // completes and finds us in kAwaitPeer).
    self.state = State::kAwaitPeer;
    return;
  }

  if (peer.state == State::kAwaitPeer) {
    // Both sides fresh from a near-simultaneous restart: simultaneous
    // handshake initiation collides and renegotiates (§4.3 consolidation
    // cost — cheap compared to a second detect+restart round). When both
    // sides warm-started they hold matching checkpointed offsets and resume
    // the saved session instead of renegotiating from scratch (ISSUE 3).
    Component* self_component = station_.component(component);
    const bool both_warm = self_component != nullptr &&
                           self_component->warm_started() &&
                           peer_component->warm_started();
    self.state = State::kNegotiating;
    peer.state = State::kNegotiating;
    complete_handshake(
        both_warm ? station_.cal().sync_listen : station_.cal().sync_collide,
        epoch_);
    return;
  }

  if (peer.state == State::kListenWait) {
    // The peer has been parked listening; a fresh initiator syncs quickly.
    self.state = State::kNegotiating;
    peer.state = State::kNegotiating;
    complete_handshake(station_.cal().sync_listen, epoch_);
    return;
  }

  if (peer_component->responsive() && peer.state == State::kSynced) {
    Component* self_component = station_.component(component);
    if (self_component != nullptr && self_component->warm_started()) {
      // Warm restart (ISSUE 3): the checkpointed offsets let the fresh side
      // *resume* the session the peer still holds instead of initiating a
      // new one — the stale-session resync bug is never tripped, so the
      // induced peer wedge (and its whole second detect+restart round) is
      // avoided. This is the ses/str chain's warm-restart win.
      LogLine(LogLevel::kInfo, station_.sim().now(), "sync")
          << component << " resumed checkpointed session with " << peer.name;
      self.state = State::kNegotiating;
      peer.state = State::kNegotiating;
      complete_handshake(station_.cal().sync_listen, epoch_);
      return;
    }
    // The resync bug (§4.3): a fresh session initiation against a peer
    // holding a stale session wedges the peer. "A failure/restart in one of
    // these components substantially always leads to a subsequent
    // failure/restart in the other."
    LogLine(LogLevel::kInfo, station_.sim().now(), "sync")
        << peer.name << " wedged by " << component << " resync (stale session)";
    core::FailureSpec wedge = core::make_crash(peer.name);
    wedge.kind = "induced-resync";
    station_.board().inject(std::move(wedge), station_.sim().now());
    peer.state = State::kNoSession;
    self.state = State::kListenWait;
    return;
  }

  // Peer is up but unresponsive (crashed/manifesting) or has no session:
  // park and wait for its recovery.
  self.state = State::kListenWait;
}

void SyncCoordinator::complete_handshake(util::Duration delay, std::uint64_t epoch) {
  station_.sim().schedule_after(delay, "sync.handshake", [this, epoch] {
    if (epoch != epoch_) return;  // a kill intervened
    if (a_.state == State::kNegotiating && b_.state == State::kNegotiating) {
      a_.state = State::kSynced;
      b_.state = State::kSynced;
      LogLine(LogLevel::kInfo, station_.sim().now(), "sync")
          << a_.name << " and " << b_.name << " resynchronized";
      save_session_checkpoints();
    }
  });
}

void SyncCoordinator::save_session_checkpoints() {
  ++session_;
  const std::string session = std::to_string(session_);
  station_.save_checkpoint(a_.name, {{"peer", b_.name}, {"session", session}});
  station_.save_checkpoint(b_.name, {{"peer", a_.name}, {"session", session}});
}

void SyncCoordinator::on_instant_boot() {
  a_.state = State::kSynced;
  b_.state = State::kSynced;
  save_session_checkpoints();
}

}  // namespace mercury::station
