#include "station/calibration.h"

#include <cassert>

#include "core/mercury_trees.h"

namespace mercury::station {

namespace names = core::component_names;

ComponentTiming Calibration::timing_for(const std::string& component) const {
  if (component == names::kMbus) return mbus;
  if (component == names::kSes) return ses;
  if (component == names::kStr) return str;
  if (component == names::kRtu) return rtu;
  if (component == names::kFedrcom) return fedrcom;
  if (component == names::kFedr) return fedr;
  if (component == names::kPbcom) return pbcom;
  if (component == names::kFd) return fd;
  if (component == names::kRec) return rec;
  assert(false && "unknown component");
  return {};
}

Duration Calibration::mttf_for(const std::string& component) const {
  if (component == names::kMbus) return mttf_mbus;
  if (component == names::kSes) return mttf_ses;
  if (component == names::kStr) return mttf_str;
  if (component == names::kRtu) return mttf_rtu;
  if (component == names::kFedrcom) return mttf_fedrcom;
  if (component == names::kFedr) return mttf_fedr;
  if (component == names::kPbcom) return mttf_pbcom;
  assert(false && "no MTTF for component");
  return Duration::infinity();
}

const Calibration& default_calibration() {
  static const Calibration calibration{};
  return calibration;
}

}  // namespace mercury::station
