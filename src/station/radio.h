// Radio and serial-port models.
//
// pbcom "maps a serial port to a TCP socket"; the radio hangs off the
// serial port and is tuned by commands that originated at rtu, crossed
// mbus to fedr, and were translated into low-level radio commands (§2.1,
// §4.2). The serial negotiation at pbcom startup is what makes pbcom's
// restart slow; here the Radio just tracks its tuned state so examples and
// tests can assert end-to-end command flow.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.h"

namespace mercury::station {

class Radio {
 public:
  /// Apply a low-level radio command line ("FREQ <hz>", "MODE <name>").
  /// Unknown commands are counted but otherwise ignored (real COTS radios
  /// NAK silently at this layer).
  void apply_command(const std::string& line, util::TimePoint now);

  double frequency_hz() const { return frequency_hz_; }
  const std::string& mode() const { return mode_; }
  std::uint64_t commands_applied() const { return commands_applied_; }
  std::uint64_t commands_rejected() const { return commands_rejected_; }
  util::TimePoint last_command_time() const { return last_command_; }

 private:
  double frequency_hz_ = 437.1e6;  // Sapphire-band default
  std::string mode_ = "FM";
  std::uint64_t commands_applied_ = 0;
  std::uint64_t commands_rejected_ = 0;
  util::TimePoint last_command_;
};

/// The serial line between pbcom and the radio. Writes are applied to the
/// radio; the port is unusable while closed (pbcom down).
class SerialPort {
 public:
  explicit SerialPort(Radio& radio) : radio_(&radio) {}

  void open() { open_ = true; }
  void close() { open_ = false; }
  bool is_open() const { return open_; }

  /// Write a command line; returns false (and drops it) when closed.
  bool write(const std::string& line, util::TimePoint now);

  std::uint64_t writes_dropped() const { return writes_dropped_; }

 private:
  Radio* radio_;
  bool open_ = false;
  std::uint64_t writes_dropped_ = 0;
};

}  // namespace mercury::station
