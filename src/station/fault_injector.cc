#include "station/fault_injector.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "core/failure.h"
#include "core/mercury_trees.h"
#include "util/log.h"

namespace mercury::station {

namespace names = core::component_names;
using util::Duration;
using util::TimePoint;

FaultInjector::FaultInjector(Station& station, InjectorConfig config)
    : station_(station),
      config_(config),
      rng_(station.sim().rng().fork("fault-injector")) {
  for (const auto& name : station_.component_names()) {
    Source source;
    source.component = name;
    source.mttf = station_.cal().mttf_for(name);
    sources_.emplace(name, std::move(source));
  }

  // fedr rejuvenation: every completed fedr restart resets its age and
  // voids the currently scheduled lifetime draw.
  station_.add_restart_listener([this](const std::string& name, TimePoint now) {
    if (name != names::kFedr) return;
    fedr_last_restart_ = now;
    ++fedr_epoch_;
    const auto it = sources_.find(names::kFedr);
    if (it != sources_.end()) schedule_next(it->second);
  });
}

void FaultInjector::start() {
  fedr_last_restart_ = station_.sim().now();
  if (config_.restart_faults.active()) {
    for (const auto& name : station_.component_names()) {
      if (std::find(config_.restart_fault_exempt.begin(),
                    config_.restart_fault_exempt.end(),
                    name) != config_.restart_fault_exempt.end()) {
        continue;
      }
      station_.set_restart_faults(name, config_.restart_faults);
    }
  }
  for (auto& [name, source] : sources_) schedule_next(source);
}

Duration FaultInjector::draw_lifetime(Source& source) {
  if (source.component == names::kFedr && config_.fedr_weibull_shape != 1.0) {
    // Weibull(k, lambda) with mean = lambda * Gamma(1 + 1/k). For k = 2,
    // Gamma(1.5) = sqrt(pi)/2.
    const double k = config_.fedr_weibull_shape;
    const double gamma_term = std::tgamma(1.0 + 1.0 / k);
    const double scale = source.mttf.to_seconds() / gamma_term;
    const double u = rng_.next_double();
    const double sample = scale * std::pow(-std::log1p(-u), 1.0 / k);
    // The lifetime is measured from fedr's last restart; subtract the age
    // already served (resample if already exceeded — hazard is due).
    const double age =
        (station_.sim().now() - fedr_last_restart_).to_seconds();
    return Duration::seconds(std::max(0.5, sample - age));
  }
  return rng_.exponential(source.mttf);
}

void FaultInjector::schedule_next(Source& source) {
  const Duration lifetime = draw_lifetime(source);
  const std::uint64_t epoch = fedr_epoch_;
  station_.sim().schedule_after(
      lifetime, "inject:" + source.component, [this, &source, epoch] {
        if (source.component == names::kFedr && epoch != fedr_epoch_) {
          return;  // rejuvenated since this draw; a fresh draw is scheduled
        }
        fire(source);
      });
}

void FaultInjector::fire(Source& source) {
  const TimePoint now = station_.sim().now();
  if (config_.suppress_double_faults) {
    const bool already_down =
        station_.board().manifests_at(source.component) ||
        (station_.component(source.component) != nullptr &&
         station_.component(source.component)->restarting());
    if (already_down) {
      schedule_next(source);
      return;
    }
  }

  core::FailureSpec spec;
  if (source.component == names::kPbcom &&
      rng_.chance(config_.pbcom_joint_fraction)) {
    spec = core::make_joint(names::kPbcom, {names::kFedr, names::kPbcom});
  } else {
    spec = core::make_crash(source.component);
  }
  station_.board().inject(std::move(spec), now);

  // Checkpoint damage (ISSUE 3): the crash may have trashed the victim's
  // snapshot too. Draws only happen when damage is configured, so legacy
  // runs consume no extra randomness. The legacy knobs target the local
  // (L0) snapshot.
  if (config_.damages_checkpoints()) {
    if (rng_.chance(config_.checkpoint_corrupt_prob)) {
      station_.checkpoints().corrupt(source.component,
                                     core::CheckpointTier::kL0Local);
    } else if (rng_.chance(config_.checkpoint_poison_prob)) {
      station_.checkpoints().poison(source.component,
                                    core::CheckpointTier::kL0Local);
    } else if (rng_.chance(config_.checkpoint_stale_prob)) {
      station_.checkpoints().stale_date(
          source.component, core::CheckpointTier::kL0Local,
          now - station_.config().checkpoints.ttl - Duration::seconds(1.0));
    }
  }

  // Per-tier checkpoint damage (ISSUE 7): tiers roll independently (one
  // fault can take several at once), first hit wins within a tier. Zero
  // probabilities draw nothing, so configurations without tier damage stay
  // byte-identical.
  if (config_.damages_tiers()) {
    for (std::size_t i = 0; i < core::kCheckpointTierCount; ++i) {
      const auto tier = static_cast<core::CheckpointTier>(i);
      const InjectorConfig::TierDamageProbs& probs = config_.tier_damage[i];
      if (!probs.active()) continue;
      if (probs.kill > 0.0 && rng_.chance(probs.kill)) {
        station_.checkpoints().discard_tier(source.component, tier);
      } else if (probs.corrupt > 0.0 && rng_.chance(probs.corrupt)) {
        station_.checkpoints().corrupt(source.component, tier);
      } else if (probs.poison > 0.0 && rng_.chance(probs.poison)) {
        station_.checkpoints().poison(source.component, tier);
      } else if (probs.stale > 0.0 && rng_.chance(probs.stale)) {
        station_.checkpoints().stale_date(
            source.component, tier,
            now - station_.config().checkpoints.ttl - Duration::seconds(1.0));
      }
    }
  }

  // Correlated partner loss (ISSUE 7): the same fault event fells the
  // victim's L1 replica host too. The station's host-down listener drops
  // every replica the partner held.
  if (config_.partner_down_prob > 0.0 &&
      rng_.chance(config_.partner_down_prob)) {
    const std::string& partner =
        station_.checkpoints().partner_of(source.component);
    if (!partner.empty() && !station_.board().manifests_at(partner) &&
        station_.component(partner) != nullptr &&
        !station_.component(partner)->restarting()) {
      station_.board().inject(core::make_crash(partner), now);
    }
  }

  ++source.injected;
  if (source.has_failed_before) {
    source.inter_failure.add(now - source.last_failure);
  }
  source.last_failure = now;
  source.has_failed_before = true;

  schedule_next(source);
}

std::uint64_t FaultInjector::injected(const std::string& component) const {
  const auto it = sources_.find(component);
  return it != sources_.end() ? it->second.injected : 0;
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const auto& [name, source] : sources_) total += source.injected;
  return total;
}

const util::SampleStats& FaultInjector::inter_failure_times(
    const std::string& component) const {
  static const util::SampleStats kEmpty;
  const auto it = sources_.find(component);
  return it != sources_.end() ? it->second.inter_failure : kEmpty;
}

}  // namespace mercury::station
