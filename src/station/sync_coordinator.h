// The ses <-> str startup-resynchronization protocol (paper §4.3).
//
// "Although ses and str were built independently, they synchronize with
// each other at startup and, when either is restarted, the other will
// inevitably have to be restarted as well. When restarted, both ses and str
// block waiting for the peer component to resynchronize."
//
// We model the protocol a session layer like this actually exhibits:
//
//   * A freshly restarted component initiating a session against a peer
//     holding a *stale* session trips the peer's resync bug: the peer
//     wedges (stops answering pings) — an induced failure, cure {peer}.
//     The initiator parks in LISTEN_WAIT (alive, but not yet functional).
//   * A fresh component whose peer is parked in LISTEN_WAIT completes the
//     handshake quickly (sync_listen, ~50 ms): the listener has been ready
//     and waiting.
//   * Two components restarted in parallel (group restart) come up
//     near-simultaneously, both initiate, collide, and renegotiate
//     (sync_collide, ~1.4 s) — tree IV's consolidated cell pays exactly
//     this once, which is why its 6.2 s beats tree III's 9.6 s
//     detect-restart-detect-restart chain.
#pragma once

#include <functional>
#include <string>

#include "station/calibration.h"
#include "util/time.h"

namespace mercury::station {

class Station;

class SyncCoordinator {
 public:
  enum class State {
    kNoSession,   ///< up (or down) with no session and not yet trying
    kAwaitPeer,   ///< fresh; waiting for a peer that is still restarting
    kListenWait,  ///< fresh; parked listening for the peer to come back
    kNegotiating, ///< collided handshake in progress
    kSynced,      ///< session established — functional
  };

  SyncCoordinator(Station& station, std::string a, std::string b);

  bool synced(const std::string& component) const;
  State state(const std::string& component) const;

  /// Lifecycle notifications from the two components.
  void on_killed(const std::string& component);
  void on_started(const std::string& component);
  void on_instant_boot();

 private:
  struct Side {
    std::string name;
    State state = State::kNoSession;
  };

  Side& side(const std::string& component);
  const Side& side(const std::string& component) const;
  Side& peer_of(const std::string& component);
  void complete_handshake(util::Duration delay, std::uint64_t epoch);
  /// Snapshot both sides' session state (ISSUE 3): the sync offsets a warm
  /// restart reloads to *resume* the session instead of initiating fresh —
  /// which is what keeps the stale-session resync bug from wedging the peer.
  void save_session_checkpoints();

  Station& station_;
  Side a_;
  Side b_;
  /// Bumped on every kill; voids in-flight handshake completions.
  std::uint64_t epoch_ = 0;
  /// Session counter snapshotted into both sides' checkpoints.
  std::uint64_t session_ = 0;
};

}  // namespace mercury::station
