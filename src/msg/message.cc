#include "msg/message.h"

#include "xml/parser.h"
#include "xml/writer.h"

namespace mercury::msg {

using util::Error;
using util::Result;

std::string_view to_string(Kind kind) {
  switch (kind) {
    case Kind::kPing: return "ping";
    case Kind::kPong: return "pong";
    case Kind::kCommand: return "command";
    case Kind::kAck: return "ack";
    case Kind::kNack: return "nack";
    case Kind::kTelemetry: return "telemetry";
    case Kind::kEvent: return "event";
  }
  return "?";
}

Result<Kind> kind_from_string(std::string_view s) {
  if (s == "ping") return Kind::kPing;
  if (s == "pong") return Kind::kPong;
  if (s == "command") return Kind::kCommand;
  if (s == "ack") return Kind::kAck;
  if (s == "nack") return Kind::kNack;
  if (s == "telemetry") return Kind::kTelemetry;
  if (s == "event") return Kind::kEvent;
  return Error("unknown message kind '" + std::string{s} + "'");
}

std::string encode(const Message& message) {
  // Serializes straight into the wire string — no intermediate <msg> Element
  // (which would deep-copy the body) and no attribute-map inserts. The bytes
  // are identical to writing the equivalent tree: attributes appear in the
  // sorted order the element's attribute map would store them (from,
  // reply-to, seq, to, type, verb), which the round-trip test pins down.
  std::string out;
  out.reserve(64 + message.from.size() + message.to.size() + message.verb.size());
  out += "<msg from=\"";
  xml::escape_attr_to(out, message.from);
  out += '"';
  if (message.in_reply_to) {
    out += " reply-to=\"";
    out += std::to_string(static_cast<long long>(*message.in_reply_to));
    out += '"';
  }
  out += " seq=\"";
  out += std::to_string(static_cast<long long>(message.seq));
  out += "\" to=\"";
  xml::escape_attr_to(out, message.to);
  out += "\" type=\"";
  out += to_string(message.kind);
  out += '"';
  if (!message.verb.empty()) {
    out += " verb=\"";
    xml::escape_attr_to(out, message.verb);
    out += '"';
  }
  out += '>';
  xml::write_to(out, message.body);
  out += "</msg>";
  return out;
}

Result<Message> decode(std::string_view wire) {
  auto doc = xml::parse(wire);
  if (!doc.ok()) return doc.error().wrap("decoding message");
  xml::Element& root = doc.value();
  if (root.name() != "msg") {
    return Error("expected <msg> root, got <" + root.name() + ">");
  }

  // Read attributes through the map directly: one binary search and one
  // string copy per field (attr() would add an optional<string> copy each).
  const auto& attrs = root.attributes();
  Message message;
  const auto type = attrs.find("type");
  if (type == attrs.end()) return Error("<msg> missing 'type' attribute");
  auto kind = kind_from_string(type->second);
  if (!kind.ok()) return kind.error();
  message.kind = kind.value();

  const auto from = attrs.find("from");
  const auto to = attrs.find("to");
  if (from == attrs.end() || from->second.empty()) {
    return Error("<msg> missing 'from' attribute");
  }
  if (to == attrs.end() || to->second.empty()) {
    return Error("<msg> missing 'to' attribute");
  }
  message.from = from->second;
  message.to = to->second;

  const auto seq = root.attr_int("seq");
  if (!seq || *seq < 0) return Error("<msg> missing or invalid 'seq' attribute");
  message.seq = static_cast<std::uint64_t>(*seq);

  const auto verb = attrs.find("verb");
  if (verb != attrs.end()) message.verb = verb->second;
  if (const auto reply = root.attr_int("reply-to")) {
    if (*reply < 0) return Error("<msg> invalid 'reply-to' attribute");
    message.in_reply_to = static_cast<std::uint64_t>(*reply);
  }

  if (xml::Element* body = root.child("body")) {
    // The parse result dies with this call: steal the body instead of
    // deep-copying it.
    message.body = std::move(*body);
  }
  return message;
}

Message make_ping(std::string from, std::string to, std::uint64_t seq) {
  Message m;
  m.kind = Kind::kPing;
  m.from = std::move(from);
  m.to = std::move(to);
  m.seq = seq;
  return m;
}

Message make_pong(const Message& ping, std::string from) {
  Message m;
  m.kind = Kind::kPong;
  m.from = std::move(from);
  m.to = ping.from;
  m.seq = ping.seq;  // pongs reuse the ping's sequence number
  m.in_reply_to = ping.seq;
  return m;
}

Message make_command(std::string from, std::string to, std::uint64_t seq,
                     std::string verb) {
  Message m;
  m.kind = Kind::kCommand;
  m.from = std::move(from);
  m.to = std::move(to);
  m.seq = seq;
  m.verb = std::move(verb);
  return m;
}

Message make_ack(const Message& command, std::string from) {
  Message m;
  m.kind = Kind::kAck;
  m.from = std::move(from);
  m.to = command.from;
  m.seq = command.seq;
  m.verb = command.verb;
  m.in_reply_to = command.seq;
  return m;
}

Message make_nack(const Message& command, std::string from, std::string reason) {
  Message m = make_ack(command, std::move(from));
  m.kind = Kind::kNack;
  m.body.set_attr("reason", std::move(reason));
  return m;
}

Message make_event(std::string from, std::uint64_t seq, std::string name) {
  Message m;
  m.kind = Kind::kEvent;
  m.from = std::move(from);
  m.to = "*";
  m.seq = seq;
  m.verb = std::move(name);
  return m;
}

}  // namespace mercury::msg
