#include "msg/message.h"

#include "xml/parser.h"
#include "xml/writer.h"

namespace mercury::msg {

using util::Error;
using util::Result;

std::string_view to_string(Kind kind) {
  switch (kind) {
    case Kind::kPing: return "ping";
    case Kind::kPong: return "pong";
    case Kind::kCommand: return "command";
    case Kind::kAck: return "ack";
    case Kind::kNack: return "nack";
    case Kind::kTelemetry: return "telemetry";
    case Kind::kEvent: return "event";
  }
  return "?";
}

Result<Kind> kind_from_string(std::string_view s) {
  if (s == "ping") return Kind::kPing;
  if (s == "pong") return Kind::kPong;
  if (s == "command") return Kind::kCommand;
  if (s == "ack") return Kind::kAck;
  if (s == "nack") return Kind::kNack;
  if (s == "telemetry") return Kind::kTelemetry;
  if (s == "event") return Kind::kEvent;
  return Error("unknown message kind '" + std::string{s} + "'");
}

std::string encode(const Message& message) {
  xml::Element root("msg");
  root.set_attr("type", std::string{to_string(message.kind)});
  root.set_attr("from", message.from);
  root.set_attr("to", message.to);
  root.set_attr("seq", static_cast<long long>(message.seq));
  if (!message.verb.empty()) root.set_attr("verb", message.verb);
  if (message.in_reply_to) {
    root.set_attr("reply-to", static_cast<long long>(*message.in_reply_to));
  }
  root.add_child(message.body);
  return xml::write(root);
}

Result<Message> decode(std::string_view wire) {
  auto doc = xml::parse(wire);
  if (!doc.ok()) return doc.error().wrap("decoding message");
  const xml::Element& root = doc.value();
  if (root.name() != "msg") {
    return Error("expected <msg> root, got <" + root.name() + ">");
  }

  Message message;
  const auto type = root.attr("type");
  if (!type) return Error("<msg> missing 'type' attribute");
  auto kind = kind_from_string(*type);
  if (!kind.ok()) return kind.error();
  message.kind = kind.value();

  const auto from = root.attr("from");
  const auto to = root.attr("to");
  if (!from || from->empty()) return Error("<msg> missing 'from' attribute");
  if (!to || to->empty()) return Error("<msg> missing 'to' attribute");
  message.from = *from;
  message.to = *to;

  const auto seq = root.attr_int("seq");
  if (!seq || *seq < 0) return Error("<msg> missing or invalid 'seq' attribute");
  message.seq = static_cast<std::uint64_t>(*seq);

  message.verb = root.attr_or("verb", "");
  if (const auto reply = root.attr_int("reply-to")) {
    if (*reply < 0) return Error("<msg> invalid 'reply-to' attribute");
    message.in_reply_to = static_cast<std::uint64_t>(*reply);
  }

  if (const xml::Element* body = root.child("body")) {
    message.body = *body;
  }
  return message;
}

Message make_ping(std::string from, std::string to, std::uint64_t seq) {
  Message m;
  m.kind = Kind::kPing;
  m.from = std::move(from);
  m.to = std::move(to);
  m.seq = seq;
  return m;
}

Message make_pong(const Message& ping, std::string from) {
  Message m;
  m.kind = Kind::kPong;
  m.from = std::move(from);
  m.to = ping.from;
  m.seq = ping.seq;  // pongs reuse the ping's sequence number
  m.in_reply_to = ping.seq;
  return m;
}

Message make_command(std::string from, std::string to, std::uint64_t seq,
                     std::string verb) {
  Message m;
  m.kind = Kind::kCommand;
  m.from = std::move(from);
  m.to = std::move(to);
  m.seq = seq;
  m.verb = std::move(verb);
  return m;
}

Message make_ack(const Message& command, std::string from) {
  Message m;
  m.kind = Kind::kAck;
  m.from = std::move(from);
  m.to = command.from;
  m.seq = command.seq;
  m.verb = command.verb;
  m.in_reply_to = command.seq;
  return m;
}

Message make_nack(const Message& command, std::string from, std::string reason) {
  Message m = make_ack(command, std::move(from));
  m.kind = Kind::kNack;
  m.body.set_attr("reason", std::move(reason));
  return m;
}

Message make_event(std::string from, std::uint64_t seq, std::string name) {
  Message m;
  m.kind = Kind::kEvent;
  m.from = std::move(from);
  m.to = "*";
  m.seq = seq;
  m.verb = std::move(name);
  return m;
}

}  // namespace mercury::msg
