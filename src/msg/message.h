// The Mercury XML command language (paper §2.1).
//
// Every message on mbus is an XML document:
//
//   <msg type="ping" from="fd" to="ses" seq="42">
//     <body .../>
//   </msg>
//
// Message kinds:
//   ping / pong            — application-level liveness probes (§2.2)
//   command / ack / nack   — high-level station commands and replies
//   telemetry              — downlinked science/housekeeping data
//   event                  — asynchronous notifications (e.g. pass start)
//
// The wire format is the serialized XML; Message <-> XML conversion is
// lossless and round-trip tested.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "util/result.h"
#include "xml/element.h"

namespace mercury::msg {

enum class Kind {
  kPing,
  kPong,
  kCommand,
  kAck,
  kNack,
  kTelemetry,
  kEvent,
};

std::string_view to_string(Kind kind);
util::Result<Kind> kind_from_string(std::string_view s);

/// One message on the software bus. A plain value type: no invariants beyond
/// "kind/from/to are set", enforced at encode time.
struct Message {
  Kind kind = Kind::kEvent;
  std::string from;
  std::string to;
  std::uint64_t seq = 0;
  /// Command verb for kCommand (e.g. "track", "tune", "point"); event name
  /// for kEvent; empty otherwise.
  std::string verb;
  /// For kPong/kAck/kNack: the seq of the message being answered.
  std::optional<std::uint64_t> in_reply_to;
  /// Structured payload (command arguments, telemetry frames, ...).
  xml::Element body{"body"};

  bool operator==(const Message&) const = default;
};

/// Serialize to the XML wire format.
std::string encode(const Message& message);

/// Parse the XML wire format. Fails on missing/unknown required fields.
util::Result<Message> decode(std::string_view wire);

// --- Convenience constructors -------------------------------------------

Message make_ping(std::string from, std::string to, std::uint64_t seq);
Message make_pong(const Message& ping, std::string from);
Message make_command(std::string from, std::string to, std::uint64_t seq,
                     std::string verb);
Message make_ack(const Message& command, std::string from);
Message make_nack(const Message& command, std::string from, std::string reason);
Message make_event(std::string from, std::uint64_t seq, std::string name);

}  // namespace mercury::msg
